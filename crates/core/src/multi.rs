//! Multiple disjoint safe regions (paper §3.1: the two-domain model "can
//! be extended into multiple and/or disjoint domains, depending on the
//! technique").
//!
//! [`MultiRegion`] manages several safe regions under one technique, each
//! in its own domain where the hardware allows it, and surfaces Table 3's
//! limits as behaviour:
//!
//! * **MPK** — up to 15 disjoint domains (16 keys minus the default);
//!   opening one region does not open another.
//! * **VMFUNC** — each region's pages live only in its own EPT (up to
//!   511 secure EPTs); switching to one region's EPT hides the others.
//! * **crypt** — unlimited domains (one key each), since domains are just
//!   ciphertexts.
//! * **MPX/SFI** — a single partition split: regions are isolated from
//!   the program but **not from each other**; [`MultiRegion::disjoint`]
//!   reports `false`, matching Table 3's 4-bound / mask-dependent limits.

use memsentry_cpu::{Machine, Trap};
use memsentry_hv::DuneSandbox;
use memsentry_mmu::{EptSet, PageFlags, VirtAddr, PAGE_SIZE};
use memsentry_passes::{DomainSequences, SafeRegionLayout};

use crate::region::SafeRegionAllocator;
use crate::technique::Technique;

/// Errors from multi-region management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiRegionError {
    /// The technique's domain limit (Table 3) is exhausted.
    DomainLimit {
        /// The technique.
        technique: &'static str,
        /// Its maximum number of disjoint domains.
        max: u32,
    },
    /// The technique does not support domain switching.
    NotDomainBased,
}

impl core::fmt::Display for MultiRegionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MultiRegionError::DomainLimit { technique, max } => {
                write!(f, "{technique} supports at most {max} disjoint domains")
            }
            MultiRegionError::NotDomainBased => write!(f, "technique is not domain-based"),
        }
    }
}

impl std::error::Error for MultiRegionError {}

/// A set of safe regions under one technique.
#[derive(Debug)]
pub struct MultiRegion {
    technique: Technique,
    allocator: SafeRegionAllocator,
    regions: Vec<SafeRegionLayout>,
}

impl MultiRegion {
    /// Creates an empty set.
    pub fn new(technique: Technique) -> Self {
        Self {
            technique,
            allocator: SafeRegionAllocator::new(),
            regions: Vec::new(),
        }
    }

    /// Number of *disjoint* domains the technique supports (Table 3).
    pub fn max_disjoint_domains(technique: Technique) -> u32 {
        match technique {
            // 16 keys minus key 0 (the default domain).
            Technique::Mpk => 15,
            // 512 EPTP slots minus the default EPT.
            Technique::Vmfunc => 511,
            // 12-bit PCIDs minus the default address space.
            Technique::PageTableSwitch => 4095,
            Technique::Crypt | Technique::Sgx | Technique::MprotectBaseline => u32::MAX,
            // One partition: regions are not isolated from each other.
            Technique::Sfi | Technique::Mpx => 1,
            Technique::InfoHiding => u32::MAX,
        }
    }

    /// Whether regions are isolated from *each other* (not only from the
    /// rest of the program).
    pub fn disjoint(&self) -> bool {
        !matches!(self.technique, Technique::Sfi | Technique::Mpx)
    }

    /// Allocates another region in its own domain.
    pub fn add_region(&mut self, len: u64) -> Result<SafeRegionLayout, MultiRegionError> {
        let max = Self::max_disjoint_domains(self.technique);
        if self.disjoint() && self.regions.len() as u32 >= max {
            return Err(MultiRegionError::DomainLimit {
                technique: self.technique.name(),
                max,
            });
        }
        let mut layout = self.allocator.alloc(len);
        // One EPT per region for VMFUNC (EPT 0 is the default domain).
        layout.secure_ept = self.regions.len() as u32 + 1;
        self.regions.push(layout);
        Ok(layout)
    }

    /// The regions allocated so far.
    pub fn regions(&self) -> &[SafeRegionLayout] {
        &self.regions
    }

    /// Open/close sequences for region `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the technique has no domain
    /// sequences (address-based regions need no switching).
    pub fn sequences(&self, index: usize) -> DomainSequences {
        let layout = &self.regions[index];
        match self.technique {
            Technique::Mpk => DomainSequences::mpk(layout),
            Technique::Vmfunc => DomainSequences::vmfunc(layout),
            Technique::Crypt => DomainSequences::crypt(layout),
            Technique::Sgx => DomainSequences::sgx(),
            Technique::MprotectBaseline => DomainSequences::mprotect(layout),
            _ => panic!("address-based techniques have no domain sequences"),
        }
    }

    /// Prepares a machine with every region mapped and protected in its
    /// own domain.
    pub fn prepare_machine(&self, machine: &mut Machine) -> Result<(), Trap> {
        let needs_vm = self.technique == Technique::Vmfunc;
        if needs_vm {
            let ept = EptSet::new(self.regions.len() + 1, true);
            machine.space.install_ept(ept);
            DuneSandbox::enter_with_existing_ept(machine);
        }
        for layout in &self.regions {
            let pages = layout.len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
            machine
                .space
                .map_region(VirtAddr(layout.base), pages, PageFlags::rw());
            match self.technique {
                Technique::Mpk => {
                    machine
                        .space
                        .pkey_mprotect(VirtAddr(layout.base), pages, layout.pkey);
                    machine.space.pkru.set_access_disable(layout.pkey, true);
                    machine.space.pkru.set_write_disable(layout.pkey, true);
                }
                Technique::Vmfunc => {
                    DuneSandbox::mark_secret_range_in(
                        machine,
                        layout.base,
                        pages,
                        layout.secure_ept as usize,
                    )?;
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsentry_ir::{FunctionBuilder, Inst, Program, Reg};
    use memsentry_mmu::Fault;

    fn reader(addr: u64, open: &[Inst], close: &[Inst]) -> Program {
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::MovImm {
            dst: Reg::Rbx,
            imm: addr,
        });
        for i in open {
            b.push_privileged(*i);
        }
        b.push_privileged(Inst::Load {
            dst: Reg::Rax,
            addr: Reg::Rbx,
            offset: 0,
        });
        // Try the *other* region's address while this domain is open.
        b.push(Inst::Mov {
            dst: Reg::Rcx,
            src: Reg::Rax,
        });
        for i in close {
            b.push_privileged(*i);
        }
        b.push(Inst::Halt);
        p.add_function(b.finish());
        p
    }

    #[test]
    fn mpk_domains_are_disjoint() {
        let mut multi = MultiRegion::new(Technique::Mpk);
        let a = multi.add_region(64).unwrap();
        let b = multi.add_region(64).unwrap();
        assert_ne!(a.pkey, b.pkey);
        // Open region A; read region A (ok) then region B (must fault).
        let seq = multi.sequences(0);
        let mut p = Program::new();
        let mut fb = FunctionBuilder::new("main");
        for i in &seq.open {
            fb.push_privileged(*i);
        }
        fb.push(Inst::MovImm {
            dst: Reg::Rbx,
            imm: a.base,
        });
        fb.push_privileged(Inst::Load {
            dst: Reg::Rax,
            addr: Reg::Rbx,
            offset: 0,
        });
        fb.push(Inst::MovImm {
            dst: Reg::Rbx,
            imm: b.base,
        });
        fb.push(Inst::Load {
            dst: Reg::Rax,
            addr: Reg::Rbx,
            offset: 0,
        });
        fb.push(Inst::Halt);
        p.add_function(fb.finish());
        let mut m = Machine::new(p);
        multi.prepare_machine(&mut m).unwrap();
        match m.run().expect_trap() {
            Trap::Mmu(Fault::PkeyDenied { key, .. }) => assert_eq!(*key, b.pkey),
            other => panic!("expected pkey fault on region B, got {other:?}"),
        }
    }

    #[test]
    fn mpk_domain_limit_is_fifteen() {
        let mut multi = MultiRegion::new(Technique::Mpk);
        for _ in 0..15 {
            multi.add_region(16).unwrap();
        }
        assert_eq!(
            multi.add_region(16).unwrap_err(),
            MultiRegionError::DomainLimit {
                technique: "MPK",
                max: 15
            }
        );
    }

    #[test]
    fn vmfunc_regions_live_in_distinct_epts() {
        let mut multi = MultiRegion::new(Technique::Vmfunc);
        let a = multi.add_region(64).unwrap();
        let b = multi.add_region(64).unwrap();
        assert_eq!(a.secure_ept, 1);
        assert_eq!(b.secure_ept, 2);
        // Open A's EPT: A readable, B not.
        let seq = multi.sequences(0);
        let mut p = reader(a.base, &seq.open, &seq.close);
        // Append a read of B inside A's window.
        let body = &mut p.functions[0].body;
        let insert_at = body.len() - 2; // before close... simpler: rebuild
        let _ = insert_at;
        let mut m = Machine::new(p);
        multi.prepare_machine(&mut m).unwrap();
        m.run().expect_exit(); // A readable in its own domain

        // Reading B while A's domain is open must fault.
        let mut p2 = Program::new();
        let mut fb = FunctionBuilder::new("main");
        for i in &seq.open {
            fb.push_privileged(*i);
        }
        fb.push(Inst::MovImm {
            dst: Reg::Rbx,
            imm: b.base,
        });
        fb.push(Inst::Load {
            dst: Reg::Rax,
            addr: Reg::Rbx,
            offset: 0,
        });
        fb.push(Inst::Halt);
        p2.add_function(fb.finish());
        let mut m2 = Machine::new(p2);
        multi.prepare_machine(&mut m2).unwrap();
        assert!(matches!(m2.run().expect_trap(), Trap::Mmu(Fault::Ept(_))));
    }

    #[test]
    fn address_based_regions_are_not_mutually_isolated() {
        let multi = MultiRegion::new(Technique::Mpx);
        assert!(!multi.disjoint());
        assert_eq!(MultiRegion::max_disjoint_domains(Technique::Mpx), 1);
        assert_eq!(MultiRegion::max_disjoint_domains(Technique::Sfi), 1);
    }

    #[test]
    fn crypt_domains_are_unlimited() {
        let mut multi = MultiRegion::new(Technique::Crypt);
        for _ in 0..64 {
            multi.add_region(16).unwrap();
        }
        assert_eq!(multi.regions().len(), 64);
    }
}
