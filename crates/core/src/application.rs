//! Application profiles: what a defense instruments (paper Table 2).
//!
//! Each row of the paper's Table 2 maps a class of defense system to the
//! instrumentation points MemSentry must use — loads/stores for
//! address-based isolation, event classes for domain-based isolation.

use memsentry_passes::{InstrumentMode, SwitchPoints};

/// A defense-application profile (the rows of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Application {
    /// Code randomization: protect code layout secrets against *reads*.
    /// Domain switches at indirect branches.
    CodeRandomization,
    /// CFI variants: protect branch-target metadata against reads.
    /// Domain switches at indirect branches.
    Cfi,
    /// Shadow stack: protect return addresses against *writes*.
    /// Domain switches at call/ret.
    ShadowStack,
    /// CPI: protect the code-pointer safe region against writes.
    Cpi,
    /// Layout (re)randomization keyed to system I/O (e.g. TASR).
    LayoutRandomization,
    /// Heap metadata protection (DieHard-style allocators).
    HeapProtection,
    /// Arbitrary program data (private keys): both reads and writes,
    /// instrumentation points from points-to information.
    ProgramData,
}

impl Application {
    /// Every profile, in Table 2 order.
    pub const ALL: [Application; 7] = [
        Application::CodeRandomization,
        Application::Cfi,
        Application::ShadowStack,
        Application::Cpi,
        Application::LayoutRandomization,
        Application::HeapProtection,
        Application::ProgramData,
    ];

    /// Which accesses an address-based technique must instrument
    /// (Table 2, left half).
    pub fn address_mode(self) -> InstrumentMode {
        match self {
            // Leaks of the region are the threat: instrument loads.
            Application::CodeRandomization | Application::Cfi => InstrumentMode::READS,
            // Integrity is the threat: instrument stores.
            Application::ShadowStack | Application::Cpi => InstrumentMode::WRITES,
            // TASR-style and heap metadata: integrity of the region.
            Application::LayoutRandomization | Application::HeapProtection => {
                InstrumentMode::WRITES
            }
            // Both confidentiality and integrity.
            Application::ProgramData => InstrumentMode::READ_WRITE,
        }
    }

    /// Where a domain-based technique must switch (Table 2, right half).
    pub fn switch_points(self) -> SwitchPoints {
        match self {
            Application::CodeRandomization | Application::Cfi => SwitchPoints::IndirectBranch,
            Application::ShadowStack | Application::Cpi => SwitchPoints::CallRet,
            Application::LayoutRandomization => SwitchPoints::Syscall,
            Application::HeapProtection => SwitchPoints::AllocatorCall,
            Application::ProgramData => SwitchPoints::Privileged,
        }
    }

    /// Display name used by the harness output.
    pub fn name(self) -> &'static str {
        match self {
            Application::CodeRandomization => "code randomization",
            Application::Cfi => "CFI variants",
            Application::ShadowStack => "shadow stack",
            Application::Cpi => "CPI",
            Application::LayoutRandomization => "layout randomization",
            Application::HeapProtection => "heap protection",
            Application::ProgramData => "program data",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_address_modes() {
        assert_eq!(
            Application::CodeRandomization.address_mode(),
            InstrumentMode::READS
        );
        assert_eq!(Application::Cfi.address_mode(), InstrumentMode::READS);
        assert_eq!(
            Application::ShadowStack.address_mode(),
            InstrumentMode::WRITES
        );
        assert_eq!(Application::Cpi.address_mode(), InstrumentMode::WRITES);
        assert_eq!(
            Application::ProgramData.address_mode(),
            InstrumentMode::READ_WRITE
        );
    }

    #[test]
    fn table2_switch_points() {
        assert_eq!(
            Application::ShadowStack.switch_points(),
            SwitchPoints::CallRet
        );
        assert_eq!(
            Application::Cfi.switch_points(),
            SwitchPoints::IndirectBranch
        );
        assert_eq!(
            Application::LayoutRandomization.switch_points(),
            SwitchPoints::Syscall
        );
        assert_eq!(
            Application::HeapProtection.switch_points(),
            SwitchPoints::AllocatorCall
        );
        assert_eq!(
            Application::ProgramData.switch_points(),
            SwitchPoints::Privileged
        );
    }

    #[test]
    fn all_profiles_have_names() {
        for a in Application::ALL {
            assert!(!a.name().is_empty());
        }
    }
}
