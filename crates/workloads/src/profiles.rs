//! Per-benchmark instruction-mix profiles.
//!
//! Event rates are per 1000 retired instructions, drawn from the
//! published characterizations of SPEC CPU2006 (memory-heavy `mcf`/`lbm`,
//! call-heavy `povray`/`xalancbmk`/`perlbench`, branchless `libquantum`,
//! vectorized FP in `milc`/`lbm`/`sphinx3`) and calibrated so the
//! simulated overheads reproduce the paper's Figures 3-6 geomeans (see
//! EXPERIMENTS.md for the calibration table).

/// One SPEC CPU2006 C/C++ benchmark's behavioural profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchProfile {
    /// SPEC name, e.g. "400.perlbench".
    pub name: &'static str,
    /// Floating-point (CFP2006) benchmark.
    pub fp: bool,
    /// Loads per kilo-instruction.
    pub loads_pk: u32,
    /// Stores per kilo-instruction.
    pub stores_pk: u32,
    /// Call+ret pairs per kilo-instruction.
    pub callret_pk: f64,
    /// Indirect calls per kilo-instruction.
    pub indirect_pk: f64,
    /// System calls per *million* instructions.
    pub syscalls_pm: f64,
    /// Allocator call pairs (malloc+free) per million instructions.
    pub allocs_pm: f64,
    /// Working-set size in pages (drives TLB behaviour).
    pub ws_pages: u32,
    /// Fractional slowdown when the `ymm` uppers are confiscated by the
    /// crypt technique (loss of vectorization + xmm spills).
    pub xmm_penalty: f64,
}

/// The 19 C/C++ benchmarks of SPEC CPU2006 the paper evaluates.
pub const SPEC2006: [BenchProfile; 19] = [
    BenchProfile {
        name: "400.perlbench",
        fp: false,
        loads_pk: 290,
        stores_pk: 85,
        callret_pk: 6.38,
        indirect_pk: 3.2,
        syscalls_pm: 30.0,
        allocs_pm: 120.0,
        ws_pages: 8,
        xmm_penalty: 0.0315,
    },
    BenchProfile {
        name: "401.bzip2",
        fp: false,
        loads_pk: 270,
        stores_pk: 70,
        callret_pk: 0.935,
        indirect_pk: 0.25,
        syscalls_pm: 10.0,
        allocs_pm: 2.0,
        ws_pages: 16,
        xmm_penalty: 0.0189,
    },
    BenchProfile {
        name: "403.gcc",
        fp: false,
        loads_pk: 300,
        stores_pk: 90,
        callret_pk: 4.0,
        indirect_pk: 2.1,
        syscalls_pm: 60.0,
        allocs_pm: 200.0,
        ws_pages: 24,
        xmm_penalty: 0.0315,
    },
    BenchProfile {
        name: "429.mcf",
        fp: false,
        loads_pk: 380,
        stores_pk: 60,
        callret_pk: 1.19,
        indirect_pk: 0.25,
        syscalls_pm: 8.0,
        allocs_pm: 1.0,
        ws_pages: 64,
        xmm_penalty: 0.0126,
    },
    BenchProfile {
        name: "433.milc",
        fp: true,
        loads_pk: 310,
        stores_pk: 75,
        callret_pk: 1.02,
        indirect_pk: 0.3,
        syscalls_pm: 25.0,
        allocs_pm: 4.0,
        ws_pages: 48,
        xmm_penalty: 0.725,
    },
    BenchProfile {
        name: "444.namd",
        fp: true,
        loads_pk: 320,
        stores_pk: 60,
        callret_pk: 0.468,
        indirect_pk: 0.12,
        syscalls_pm: 6.0,
        allocs_pm: 1.0,
        ws_pages: 12,
        xmm_penalty: 0.158,
    },
    BenchProfile {
        name: "445.gobmk",
        fp: false,
        loads_pk: 260,
        stores_pk: 75,
        callret_pk: 5.18,
        indirect_pk: 2.6,
        syscalls_pm: 12.0,
        allocs_pm: 10.0,
        ws_pages: 10,
        xmm_penalty: 0.0252,
    },
    BenchProfile {
        name: "447.dealII",
        fp: true,
        loads_pk: 330,
        stores_pk: 80,
        callret_pk: 3.48,
        indirect_pk: 2.6,
        syscalls_pm: 10.0,
        allocs_pm: 60.0,
        ws_pages: 20,
        xmm_penalty: 0.208,
    },
    BenchProfile {
        name: "450.soplex",
        fp: true,
        loads_pk: 340,
        stores_pk: 70,
        callret_pk: 2.04,
        indirect_pk: 1.1,
        syscalls_pm: 12.0,
        allocs_pm: 20.0,
        ws_pages: 28,
        xmm_penalty: 0.365,
    },
    BenchProfile {
        name: "453.povray",
        fp: true,
        loads_pk: 300,
        stores_pk: 80,
        callret_pk: 8.67,
        indirect_pk: 4.4,
        syscalls_pm: 10.0,
        allocs_pm: 40.0,
        ws_pages: 6,
        xmm_penalty: 0.29,
    },
    BenchProfile {
        name: "456.hmmer",
        fp: false,
        loads_pk: 290,
        stores_pk: 110,
        callret_pk: 0.595,
        indirect_pk: 0.12,
        syscalls_pm: 6.0,
        allocs_pm: 2.0,
        ws_pages: 6,
        xmm_penalty: 0.29,
    },
    BenchProfile {
        name: "458.sjeng",
        fp: false,
        loads_pk: 250,
        stores_pk: 65,
        callret_pk: 4.42,
        indirect_pk: 2.2,
        syscalls_pm: 6.0,
        allocs_pm: 1.0,
        ws_pages: 10,
        xmm_penalty: 0.0189,
    },
    BenchProfile {
        name: "462.libquantum",
        fp: false,
        loads_pk: 240,
        stores_pk: 45,
        callret_pk: 0.34,
        indirect_pk: 0.06,
        syscalls_pm: 8.0,
        allocs_pm: 1.0,
        ws_pages: 32,
        xmm_penalty: 0.0504,
    },
    BenchProfile {
        name: "464.h264ref",
        fp: false,
        loads_pk: 330,
        stores_pk: 95,
        callret_pk: 2.55,
        indirect_pk: 1.3,
        syscalls_pm: 10.0,
        allocs_pm: 6.0,
        ws_pages: 12,
        xmm_penalty: 0.176,
    },
    BenchProfile {
        name: "470.lbm",
        fp: true,
        loads_pk: 330,
        stores_pk: 95,
        callret_pk: 0.23,
        indirect_pk: 0.04,
        syscalls_pm: 5.0,
        allocs_pm: 0.5,
        ws_pages: 64,
        xmm_penalty: 1.09,
    },
    BenchProfile {
        name: "471.omnetpp",
        fp: false,
        loads_pk: 320,
        stores_pk: 90,
        callret_pk: 5.78,
        indirect_pk: 4.4,
        syscalls_pm: 15.0,
        allocs_pm: 300.0,
        ws_pages: 32,
        xmm_penalty: 0.0315,
    },
    BenchProfile {
        name: "473.astar",
        fp: false,
        loads_pk: 310,
        stores_pk: 70,
        callret_pk: 2.89,
        indirect_pk: 1.4,
        syscalls_pm: 6.0,
        allocs_pm: 30.0,
        ws_pages: 24,
        xmm_penalty: 0.0252,
    },
    BenchProfile {
        name: "482.sphinx3",
        fp: true,
        loads_pk: 330,
        stores_pk: 60,
        callret_pk: 1.7,
        indirect_pk: 0.8,
        syscalls_pm: 10.0,
        allocs_pm: 8.0,
        ws_pages: 20,
        xmm_penalty: 0.806,
    },
    BenchProfile {
        name: "483.xalancbmk",
        fp: false,
        loads_pk: 300,
        stores_pk: 85,
        callret_pk: 9.78,
        indirect_pk: 5.2,
        syscalls_pm: 20.0,
        allocs_pm: 150.0,
        ws_pages: 24,
        xmm_penalty: 0.0882,
    },
];

/// Server-style, I/O-bound workloads (paper §6: "SPEC is very memory and
/// CPU intensive, and thus the overhead for I/O bound applications such
/// as servers will be lower"). Much higher syscall rates, lower
/// memory-access density, frequent allocator churn.
pub const SERVERS: [BenchProfile; 3] = [
    BenchProfile {
        name: "srv.webserver",
        fp: false,
        loads_pk: 180,
        stores_pk: 55,
        callret_pk: 3.4,
        indirect_pk: 1.7,
        syscalls_pm: 9000.0,
        allocs_pm: 800.0,
        ws_pages: 16,
        xmm_penalty: 0.03,
    },
    BenchProfile {
        name: "srv.kvstore",
        fp: false,
        loads_pk: 200,
        stores_pk: 70,
        callret_pk: 2.1,
        indirect_pk: 0.8,
        syscalls_pm: 14000.0,
        allocs_pm: 2000.0,
        ws_pages: 32,
        xmm_penalty: 0.02,
    },
    BenchProfile {
        name: "srv.proxy",
        fp: false,
        loads_pk: 150,
        stores_pk: 45,
        callret_pk: 2.6,
        indirect_pk: 1.2,
        syscalls_pm: 22000.0,
        allocs_pm: 400.0,
        ws_pages: 8,
        xmm_penalty: 0.02,
    },
];

impl BenchProfile {
    /// Looks up a profile by (suffix of) its name.
    pub fn by_name(name: &str) -> Option<&'static BenchProfile> {
        SPEC2006
            .iter()
            .chain(SERVERS.iter())
            .find(|p| p.name.contains(name))
    }

    /// Short name without the SPEC number prefix.
    pub fn short_name(&self) -> &'static str {
        self.name.split('.').nth(1).unwrap_or(self.name)
    }
}

/// Geometric mean helper used across the harness.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u32;
    for v in values {
        sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_benchmarks_like_the_paper() {
        assert_eq!(SPEC2006.len(), 19);
    }

    #[test]
    fn names_are_unique_and_spec_formatted() {
        let mut names: Vec<_> = SPEC2006.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19);
        for p in &SPEC2006 {
            assert!(p.name.contains('.'), "{}", p.name);
        }
    }

    #[test]
    fn lookup_by_suffix() {
        assert_eq!(BenchProfile::by_name("mcf").unwrap().name, "429.mcf");
        assert_eq!(
            BenchProfile::by_name("povray").unwrap().short_name(),
            "povray"
        );
        assert!(BenchProfile::by_name("no-such").is_none());
    }

    #[test]
    fn mixes_are_sane() {
        for p in &SPEC2006 {
            assert!(
                p.loads_pk > p.stores_pk,
                "{}: loads dominate stores",
                p.name
            );
            assert!(p.loads_pk as f64 + p.stores_pk as f64 + 4.0 * p.callret_pk < 900.0);
            assert!(p.indirect_pk <= p.callret_pk, "{}", p.name);
            assert!(p.xmm_penalty >= 0.0 && p.xmm_penalty < 2.0);
        }
    }

    #[test]
    fn fp_benchmarks_carry_the_xmm_penalties() {
        // The crypt column of Figure 6 is driven by FP/vector benchmarks.
        let max_int = SPEC2006
            .iter()
            .filter(|p| !p.fp)
            .map(|p| p.xmm_penalty)
            .fold(0.0, f64::max);
        let max_fp = SPEC2006
            .iter()
            .filter(|p| p.fp)
            .map(|p| p.xmm_penalty)
            .fold(0.0, f64::max);
        assert!(max_fp > 1.0, "lbm/milc-class penalties");
        assert!(max_fp > max_int);
    }

    #[test]
    fn call_heavy_benchmarks_match_known_spec_behaviour() {
        let call = |n: &str| BenchProfile::by_name(n).unwrap().callret_pk;
        assert!(call("xalancbmk") > call("lbm") * 10.0);
        assert!(call("povray") > call("libquantum") * 10.0);
    }

    #[test]
    fn server_profiles_are_syscall_heavy() {
        let max_spec = SPEC2006.iter().map(|p| p.syscalls_pm).fold(0.0, f64::max);
        for p in &SERVERS {
            assert!(p.syscalls_pm > max_spec * 50.0, "{}", p.name);
        }
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean([1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean([]), 0.0);
    }
}
