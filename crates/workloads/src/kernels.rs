//! Real algorithm kernels written in the IR.
//!
//! The synthetic profiles match SPEC's *statistics*; these kernels are
//! genuine programs — a sort, an open-addressing hash table, and a matrix
//! multiply — whose *results* can be checked against a Rust oracle. They
//! serve as end-to-end evidence that instrumentation preserves semantics
//! (a diff between any technique's run and the oracle would expose an
//! interpreter or pass bug), and as small non-synthetic benchmarks.

use memsentry_cpu::Machine;
use memsentry_ir::{AluOp, Cond, FunctionBuilder, Inst, Program, Reg};
use memsentry_mmu::{PageFlags, VirtAddr, PAGE_SIZE};

/// Base address of kernel data.
pub const KERNEL_DATA: u64 = 0x6000_0000;

/// An IR kernel plus its memory layout.
#[derive(Debug)]
pub struct Kernel {
    /// The program; exit code is the kernel's checksum.
    pub program: Program,
    /// Bytes of data to map at [`KERNEL_DATA`].
    pub data: Vec<u8>,
    /// The expected exit code (computed by the Rust oracle).
    pub expected: u64,
}

impl Kernel {
    /// Maps and initializes the kernel's data on a machine.
    pub fn prepare(&self, machine: &mut Machine) {
        let len = (self.data.len() as u64).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        machine
            .space
            .map_region(VirtAddr(KERNEL_DATA), len.max(PAGE_SIZE), PageFlags::rw());
        machine.space.poke(VirtAddr(KERNEL_DATA), &self.data);
    }

    /// Runs the kernel on a fresh machine and returns the exit code.
    pub fn run(&self) -> u64 {
        let mut m = Machine::new(self.program.clone());
        self.prepare(&mut m);
        m.run().expect_exit()
    }
}

fn words(values: &[u64]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Deterministic pseudo-random u64s (xorshift) for kernel inputs.
fn inputs(n: usize, mut seed: u64) -> Vec<u64> {
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % 10_000
        })
        .collect()
}

/// Insertion sort over `n` u64s; exits with `sum(a[i] * (i+1))` of the
/// sorted array (order-sensitive checksum).
pub fn sort_kernel(n: u64, seed: u64) -> Kernel {
    let values = inputs(n as usize, seed | 1);
    let mut sorted = values.clone();
    sorted.sort_unstable();
    let expected: u64 = sorted
        .iter()
        .enumerate()
        .map(|(i, v)| v.wrapping_mul(i as u64 + 1))
        .fold(0u64, u64::wrapping_add);

    let mut p = Program::new();
    let mut b = FunctionBuilder::new("sort");
    let outer = b.new_label();
    let inner = b.new_label();
    let place = b.new_label();
    let next = b.new_label();
    let sum_loop = b.new_label();
    let done = b.new_label();

    // r12 = base, rbx = i (element index), rcx = n.
    b.push(Inst::MovImm {
        dst: Reg::R12,
        imm: KERNEL_DATA,
    });
    b.push(Inst::MovImm {
        dst: Reg::Rbx,
        imm: 1,
    });
    b.push(Inst::MovImm {
        dst: Reg::Rcx,
        imm: n,
    });
    b.bind(outer);
    b.push(Inst::JmpIf {
        cond: Cond::Ge,
        a: Reg::Rbx,
        b: Reg::Rcx,
        target: done,
    });
    // r8 = &a[i]; rax = key.
    b.push(Inst::Mov {
        dst: Reg::R8,
        src: Reg::Rbx,
    });
    b.push(Inst::AluImm {
        op: AluOp::Shl,
        dst: Reg::R8,
        imm: 3,
    });
    b.push(Inst::AluReg {
        op: AluOp::Add,
        dst: Reg::R8,
        src: Reg::R12,
    });
    b.push(Inst::Load {
        dst: Reg::Rax,
        addr: Reg::R8,
        offset: 0,
    });
    // r9 walks left from &a[i].
    b.push(Inst::Mov {
        dst: Reg::R9,
        src: Reg::R8,
    });
    b.bind(inner);
    b.push(Inst::JmpIf {
        cond: Cond::Le,
        a: Reg::R9,
        b: Reg::R12,
        target: place,
    });
    b.push(Inst::Load {
        dst: Reg::R10,
        addr: Reg::R9,
        offset: -8,
    });
    b.push(Inst::JmpIf {
        cond: Cond::Le,
        a: Reg::R10,
        b: Reg::Rax,
        target: place,
    });
    b.push(Inst::Store {
        src: Reg::R10,
        addr: Reg::R9,
        offset: 0,
    });
    b.push(Inst::AluImm {
        op: AluOp::Sub,
        dst: Reg::R9,
        imm: 8,
    });
    b.push(Inst::Jmp(inner));
    b.bind(place);
    b.push(Inst::Store {
        src: Reg::Rax,
        addr: Reg::R9,
        offset: 0,
    });
    b.bind(next);
    b.push(Inst::AluImm {
        op: AluOp::Add,
        dst: Reg::Rbx,
        imm: 1,
    });
    b.push(Inst::Jmp(outer));
    // Checksum: rbp = sum(a[i] * (i+1)).
    b.bind(done);
    b.push(Inst::MovImm {
        dst: Reg::Rbp,
        imm: 0,
    });
    b.push(Inst::MovImm {
        dst: Reg::Rbx,
        imm: 0,
    });
    b.bind(sum_loop);
    {
        let fin = b.new_label();
        b.push(Inst::JmpIf {
            cond: Cond::Ge,
            a: Reg::Rbx,
            b: Reg::Rcx,
            target: fin,
        });
        b.push(Inst::Mov {
            dst: Reg::R8,
            src: Reg::Rbx,
        });
        b.push(Inst::AluImm {
            op: AluOp::Shl,
            dst: Reg::R8,
            imm: 3,
        });
        b.push(Inst::AluReg {
            op: AluOp::Add,
            dst: Reg::R8,
            src: Reg::R12,
        });
        b.push(Inst::Load {
            dst: Reg::Rax,
            addr: Reg::R8,
            offset: 0,
        });
        b.push(Inst::Mov {
            dst: Reg::R9,
            src: Reg::Rbx,
        });
        b.push(Inst::AluImm {
            op: AluOp::Add,
            dst: Reg::R9,
            imm: 1,
        });
        b.push(Inst::AluReg {
            op: AluOp::Mul,
            dst: Reg::Rax,
            src: Reg::R9,
        });
        b.push(Inst::AluReg {
            op: AluOp::Add,
            dst: Reg::Rbp,
            src: Reg::Rax,
        });
        b.push(Inst::AluImm {
            op: AluOp::Add,
            dst: Reg::Rbx,
            imm: 1,
        });
        b.push(Inst::Jmp(sum_loop));
        b.bind(fin);
    }
    b.push(Inst::Mov {
        dst: Reg::Rax,
        src: Reg::Rbp,
    });
    b.push(Inst::Halt);
    p.add_function(b.finish());

    Kernel {
        program: p,
        data: words(&values),
        expected,
    }
}

/// Open-addressing hash table: inserts `n` keys into a `2*capacity`-slot
/// table (linear probing), then looks them all up; exits with the number
/// found (must equal `n`).
pub fn hashtable_kernel(n: u64, seed: u64) -> Kernel {
    let capacity = (2 * n).next_power_of_two();
    let mask = capacity - 1;
    // Distinct nonzero keys.
    let mut keys = inputs(n as usize, seed | 1);
    keys.sort_unstable();
    keys.dedup();
    let mut k = 1u64;
    while (keys.len() as u64) < n {
        keys.push(10_000 + k);
        k += 1;
    }
    for key in keys.iter_mut() {
        *key += 1; // nonzero
    }
    let n = keys.len() as u64;

    // Layout: [0 .. n*8) keys, [key_end .. key_end + capacity*8) table.
    let table_off = n * 8;
    let mut data = words(&keys);
    data.extend(std::iter::repeat_n(0u8, (capacity * 8) as usize));

    let mut p = Program::new();
    let mut b = FunctionBuilder::new("hashtable");
    // r12 = base; rcx = n.
    b.push(Inst::MovImm {
        dst: Reg::R12,
        imm: KERNEL_DATA,
    });
    b.push(Inst::MovImm {
        dst: Reg::Rcx,
        imm: n,
    });

    // Insert phase: for i in 0..n.
    let ins_outer = b.new_label();
    let ins_probe = b.new_label();
    let ins_next = b.new_label();
    let ins_done = b.new_label();
    b.push(Inst::MovImm {
        dst: Reg::Rbx,
        imm: 0,
    });
    b.bind(ins_outer);
    b.push(Inst::JmpIf {
        cond: Cond::Ge,
        a: Reg::Rbx,
        b: Reg::Rcx,
        target: ins_done,
    });
    // rax = key = a[i].
    b.push(Inst::Mov {
        dst: Reg::R8,
        src: Reg::Rbx,
    });
    b.push(Inst::AluImm {
        op: AluOp::Shl,
        dst: Reg::R8,
        imm: 3,
    });
    b.push(Inst::AluReg {
        op: AluOp::Add,
        dst: Reg::R8,
        src: Reg::R12,
    });
    b.push(Inst::Load {
        dst: Reg::Rax,
        addr: Reg::R8,
        offset: 0,
    });
    // r9 = slot = key & mask.
    b.push(Inst::Mov {
        dst: Reg::R9,
        src: Reg::Rax,
    });
    b.push(Inst::AluImm {
        op: AluOp::And,
        dst: Reg::R9,
        imm: mask,
    });
    b.bind(ins_probe);
    // r10 = &table[slot]; r11 = table[slot].
    b.push(Inst::Mov {
        dst: Reg::R10,
        src: Reg::R9,
    });
    b.push(Inst::AluImm {
        op: AluOp::Shl,
        dst: Reg::R10,
        imm: 3,
    });
    b.push(Inst::AluImm {
        op: AluOp::Add,
        dst: Reg::R10,
        imm: KERNEL_DATA + table_off,
    });
    b.push(Inst::Load {
        dst: Reg::R11,
        addr: Reg::R10,
        offset: 0,
    });
    {
        let empty = b.new_label();
        b.push(Inst::MovImm {
            dst: Reg::Rbp,
            imm: 0,
        });
        b.push(Inst::JmpIf {
            cond: Cond::Eq,
            a: Reg::R11,
            b: Reg::Rbp,
            target: empty,
        });
        // Occupied: advance slot.
        b.push(Inst::AluImm {
            op: AluOp::Add,
            dst: Reg::R9,
            imm: 1,
        });
        b.push(Inst::AluImm {
            op: AluOp::And,
            dst: Reg::R9,
            imm: mask,
        });
        b.push(Inst::Jmp(ins_probe));
        b.bind(empty);
    }
    b.push(Inst::Store {
        src: Reg::Rax,
        addr: Reg::R10,
        offset: 0,
    });
    b.bind(ins_next);
    b.push(Inst::AluImm {
        op: AluOp::Add,
        dst: Reg::Rbx,
        imm: 1,
    });
    b.push(Inst::Jmp(ins_outer));
    b.bind(ins_done);

    // Lookup phase: count hits in rbp.
    let look_outer = b.new_label();
    let look_probe = b.new_label();
    let look_next = b.new_label();
    let look_done = b.new_label();
    b.push(Inst::MovImm {
        dst: Reg::Rbp,
        imm: 0,
    });
    b.push(Inst::MovImm {
        dst: Reg::Rbx,
        imm: 0,
    });
    b.bind(look_outer);
    b.push(Inst::JmpIf {
        cond: Cond::Ge,
        a: Reg::Rbx,
        b: Reg::Rcx,
        target: look_done,
    });
    b.push(Inst::Mov {
        dst: Reg::R8,
        src: Reg::Rbx,
    });
    b.push(Inst::AluImm {
        op: AluOp::Shl,
        dst: Reg::R8,
        imm: 3,
    });
    b.push(Inst::AluReg {
        op: AluOp::Add,
        dst: Reg::R8,
        src: Reg::R12,
    });
    b.push(Inst::Load {
        dst: Reg::Rax,
        addr: Reg::R8,
        offset: 0,
    });
    b.push(Inst::Mov {
        dst: Reg::R9,
        src: Reg::Rax,
    });
    b.push(Inst::AluImm {
        op: AluOp::And,
        dst: Reg::R9,
        imm: mask,
    });
    b.bind(look_probe);
    b.push(Inst::Mov {
        dst: Reg::R10,
        src: Reg::R9,
    });
    b.push(Inst::AluImm {
        op: AluOp::Shl,
        dst: Reg::R10,
        imm: 3,
    });
    b.push(Inst::AluImm {
        op: AluOp::Add,
        dst: Reg::R10,
        imm: KERNEL_DATA + table_off,
    });
    b.push(Inst::Load {
        dst: Reg::R11,
        addr: Reg::R10,
        offset: 0,
    });
    {
        let found = b.new_label();
        b.push(Inst::JmpIf {
            cond: Cond::Eq,
            a: Reg::R11,
            b: Reg::Rax,
            target: found,
        });
        // Not this slot: empty means miss (count nothing), else advance.
        let miss = look_next;
        b.push(Inst::MovImm {
            dst: Reg::R13,
            imm: 0,
        });
        b.push(Inst::JmpIf {
            cond: Cond::Eq,
            a: Reg::R11,
            b: Reg::R13,
            target: miss,
        });
        b.push(Inst::AluImm {
            op: AluOp::Add,
            dst: Reg::R9,
            imm: 1,
        });
        b.push(Inst::AluImm {
            op: AluOp::And,
            dst: Reg::R9,
            imm: mask,
        });
        b.push(Inst::Jmp(look_probe));
        b.bind(found);
        b.push(Inst::AluImm {
            op: AluOp::Add,
            dst: Reg::Rbp,
            imm: 1,
        });
    }
    b.bind(look_next);
    b.push(Inst::AluImm {
        op: AluOp::Add,
        dst: Reg::Rbx,
        imm: 1,
    });
    b.push(Inst::Jmp(look_outer));
    b.bind(look_done);
    b.push(Inst::Mov {
        dst: Reg::Rax,
        src: Reg::Rbp,
    });
    b.push(Inst::Halt);
    p.add_function(b.finish());

    Kernel {
        program: p,
        data,
        expected: n,
    }
}

/// `n x n` u64 matrix multiply `C = A * B` (wrapping); exits with the
/// wrapping sum of `C`.
pub fn matmul_kernel(n: u64, seed: u64) -> Kernel {
    let a = inputs((n * n) as usize, seed | 1);
    let bm = inputs((n * n) as usize, seed.wrapping_add(0x9e37) | 1);
    let mut expected = 0u64;
    for i in 0..n as usize {
        for j in 0..n as usize {
            let mut acc = 0u64;
            for k in 0..n as usize {
                acc = acc.wrapping_add(a[i * n as usize + k].wrapping_mul(bm[k * n as usize + j]));
            }
            expected = expected.wrapping_add(acc);
        }
    }

    // Layout: A at 0, B at n*n*8; C is accumulated in a register sum.
    let b_off = n * n * 8;
    let mut data = words(&a);
    data.extend(words(&bm));

    let mut p = Program::new();
    let mut b = FunctionBuilder::new("matmul");
    let li = b.new_label();
    let lj = b.new_label();
    let lk = b.new_label();
    let done_i = b.new_label();
    let done_j = b.new_label();
    let done_k = b.new_label();
    // r12 = base, rcx = n, rbp = total.
    b.push(Inst::MovImm {
        dst: Reg::R12,
        imm: KERNEL_DATA,
    });
    b.push(Inst::MovImm {
        dst: Reg::Rcx,
        imm: n,
    });
    b.push(Inst::MovImm {
        dst: Reg::Rbp,
        imm: 0,
    });
    b.push(Inst::MovImm {
        dst: Reg::Rbx,
        imm: 0,
    }); // i
    b.bind(li);
    b.push(Inst::JmpIf {
        cond: Cond::Ge,
        a: Reg::Rbx,
        b: Reg::Rcx,
        target: done_i,
    });
    b.push(Inst::MovImm {
        dst: Reg::Rsi,
        imm: 0,
    }); // j
    b.bind(lj);
    b.push(Inst::JmpIf {
        cond: Cond::Ge,
        a: Reg::Rsi,
        b: Reg::Rcx,
        target: done_j,
    });
    b.push(Inst::MovImm {
        dst: Reg::Rdi,
        imm: 0,
    }); // k
    b.push(Inst::MovImm {
        dst: Reg::R13,
        imm: 0,
    }); // acc
    b.bind(lk);
    b.push(Inst::JmpIf {
        cond: Cond::Ge,
        a: Reg::Rdi,
        b: Reg::Rcx,
        target: done_k,
    });
    // r8 = &A[i*n + k].
    b.push(Inst::Mov {
        dst: Reg::R8,
        src: Reg::Rbx,
    });
    b.push(Inst::AluReg {
        op: AluOp::Mul,
        dst: Reg::R8,
        src: Reg::Rcx,
    });
    b.push(Inst::AluReg {
        op: AluOp::Add,
        dst: Reg::R8,
        src: Reg::Rdi,
    });
    b.push(Inst::AluImm {
        op: AluOp::Shl,
        dst: Reg::R8,
        imm: 3,
    });
    b.push(Inst::AluReg {
        op: AluOp::Add,
        dst: Reg::R8,
        src: Reg::R12,
    });
    b.push(Inst::Load {
        dst: Reg::Rax,
        addr: Reg::R8,
        offset: 0,
    });
    // r9 = &B[k*n + j].
    b.push(Inst::Mov {
        dst: Reg::R9,
        src: Reg::Rdi,
    });
    b.push(Inst::AluReg {
        op: AluOp::Mul,
        dst: Reg::R9,
        src: Reg::Rcx,
    });
    b.push(Inst::AluReg {
        op: AluOp::Add,
        dst: Reg::R9,
        src: Reg::Rsi,
    });
    b.push(Inst::AluImm {
        op: AluOp::Shl,
        dst: Reg::R9,
        imm: 3,
    });
    b.push(Inst::AluImm {
        op: AluOp::Add,
        dst: Reg::R9,
        imm: KERNEL_DATA + b_off,
    });
    b.push(Inst::Load {
        dst: Reg::R10,
        addr: Reg::R9,
        offset: 0,
    });
    b.push(Inst::AluReg {
        op: AluOp::Mul,
        dst: Reg::Rax,
        src: Reg::R10,
    });
    b.push(Inst::AluReg {
        op: AluOp::Add,
        dst: Reg::R13,
        src: Reg::Rax,
    });
    b.push(Inst::AluImm {
        op: AluOp::Add,
        dst: Reg::Rdi,
        imm: 1,
    });
    b.push(Inst::Jmp(lk));
    b.bind(done_k);
    b.push(Inst::AluReg {
        op: AluOp::Add,
        dst: Reg::Rbp,
        src: Reg::R13,
    });
    b.push(Inst::AluImm {
        op: AluOp::Add,
        dst: Reg::Rsi,
        imm: 1,
    });
    b.push(Inst::Jmp(lj));
    b.bind(done_j);
    b.push(Inst::AluImm {
        op: AluOp::Add,
        dst: Reg::Rbx,
        imm: 1,
    });
    b.push(Inst::Jmp(li));
    b.bind(done_i);
    b.push(Inst::Mov {
        dst: Reg::Rax,
        src: Reg::Rbp,
    });
    b.push(Inst::Halt);
    p.add_function(b.finish());

    Kernel {
        program: p,
        data,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsentry_ir::verify;
    use memsentry_passes::{AddressBasedPass, AddressKind, InstrumentMode, Pass};

    #[test]
    fn sort_matches_the_oracle() {
        for (n, seed) in [(8u64, 1u64), (64, 42), (200, 7)] {
            let k = sort_kernel(n, seed);
            verify(&k.program).unwrap();
            assert_eq!(k.run(), k.expected, "n={n} seed={seed}");
        }
    }

    #[test]
    fn hashtable_finds_every_inserted_key() {
        for (n, seed) in [(8u64, 1u64), (100, 42)] {
            let k = hashtable_kernel(n, seed);
            verify(&k.program).unwrap();
            assert_eq!(k.run(), k.expected, "n={n} seed={seed}");
        }
    }

    #[test]
    fn matmul_matches_the_oracle() {
        for (n, seed) in [(3u64, 1u64), (8, 42), (12, 9)] {
            let k = matmul_kernel(n, seed);
            verify(&k.program).unwrap();
            assert_eq!(k.run(), k.expected, "n={n} seed={seed}");
        }
    }

    #[test]
    fn instrumentation_preserves_kernel_results() {
        // The differential check that matters: every address-based
        // technique leaves real algorithms bit-identical.
        let kernels = [
            sort_kernel(64, 3),
            hashtable_kernel(64, 3),
            matmul_kernel(8, 3),
        ];
        for kernel in &kernels {
            for kind in [AddressKind::Mpx, AddressKind::Sfi, AddressKind::MpxDual] {
                let mut p = kernel.program.clone();
                AddressBasedPass::new(kind, InstrumentMode::READ_WRITE)
                    .run(&mut p)
                    .expect("instrumentation failed");
                verify(&p).unwrap();
                let mut m = Machine::new(p);
                kernel.prepare(&mut m);
                assert_eq!(
                    m.run().expect_exit(),
                    kernel.expected,
                    "{kind:?} broke a kernel"
                );
            }
        }
    }

    #[test]
    fn kernels_have_distinct_memory_behaviour() {
        // matmul is load-heavy, sort is store-heavy relative to loads.
        let run_stats = |k: &Kernel| {
            let mut m = Machine::new(k.program.clone());
            k.prepare(&mut m);
            m.run().expect_exit();
            (m.stats().loads as f64, m.stats().stores as f64)
        };
        let (sl, ss) = run_stats(&sort_kernel(128, 5));
        let (ml, ms) = run_stats(&matmul_kernel(10, 5));
        assert!(ml / ms.max(1.0) > sl / ss, "matmul more load-biased");
    }

    #[test]
    fn golden_execution_stats_are_bit_exact() {
        // Golden determinism anchor for the simulator: the exact counters
        // and cycle bits of one fixed kernel. Any change to decoding, the
        // cost model, the memory fast paths or the TLB that moves *any* of
        // these values is a semantic change, not an optimization, and must
        // be called out in EXPERIMENTS.md. (The kernel inputs come from the
        // local xorshift generator, so this is stable across platforms.)
        let k = sort_kernel(64, 7);
        let mut m = Machine::new(k.program.clone());
        k.prepare(&mut m);
        assert_eq!(m.run().expect_exit(), 13_916_426);
        let s = m.stats();
        assert_eq!(
            s.cycles.to_bits(),
            0x40b0_0214_7ae1_473b,
            "cycles = {}",
            s.cycles
        );
        assert_eq!(s.instructions, 7638);
        assert_eq!(s.loads, 1022);
        assert_eq!(s.stores, 900);
        let t = m.space.tlb_stats();
        assert_eq!(
            (t.hits, t.misses, t.flushes, t.page_flushes),
            (1921, 1, 0, 0)
        );
    }
}
