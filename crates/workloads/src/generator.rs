//! Deterministic workload generator.
//!
//! Expands a [`BenchProfile`] into a runnable IR program whose retired
//! instruction stream matches the profile's event mix. The program is a
//! main loop over "superblocks" of ~4000 instructions; each superblock is
//! a deterministically shuffled interleaving of loads, stores, call/ret
//! pairs, indirect calls and ALU filler, with system calls and allocator
//! calls scheduled by countdown at the profile's per-million rates.
//!
//! Register discipline: the generator restricts itself to registers no
//! instrumentation sequence clobbers where values must survive events
//! (`rbx`, `rbp`, `r12`), so the same program body can be instrumented by
//! any technique.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use memsentry_cpu::kernel::nr;
use memsentry_cpu::Machine;
use memsentry_ir::{AluOp, CodeAddr, Cond, FuncId, FunctionBuilder, Inst, Program, Reg};
use memsentry_mmu::{PageFlags, VirtAddr, PAGE_SIZE};

use crate::profiles::BenchProfile;

/// Base of the workload's data region.
pub const DATA_BASE: u64 = 0x5000_0000;

/// Instruction-slot budget of one superblock.
const SUPERBLOCK_UNITS: u32 = 4000;

/// A workload request.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// The benchmark to model.
    pub profile: BenchProfile,
    /// Number of superblock iterations (~4000 instructions each).
    pub superblocks: u32,
}

/// A generated, ready-to-run workload.
///
/// # Examples
///
/// ```
/// use memsentry_cpu::Machine;
/// use memsentry_workloads::{BenchProfile, Workload, WorkloadSpec};
///
/// let profile = *BenchProfile::by_name("mcf").unwrap();
/// let w = Workload::build(WorkloadSpec { profile, superblocks: 2 });
/// let mut m = Machine::new(w.program.clone());
/// w.prepare(&mut m);
/// assert_eq!(m.run().expect_exit(), 0);
/// assert!(m.stats().loads > 1000);
/// ```
#[derive(Debug)]
pub struct Workload {
    /// The program (uninstrumented; apply MemSentry passes as desired).
    pub program: Program,
    /// The profile it was generated from.
    pub profile: BenchProfile,
    /// Superblock iterations.
    pub superblocks: u32,
    table_offset: i64,
    alloc_ctr_offset: i64,
    alloc_every: u64,
    ileaf: FuncId,
}

#[derive(Clone, Copy, PartialEq)]
enum Slot {
    Load(u32),
    Store(u32),
    CallRet,
    Indirect,
    Filler(u32),
}

impl Workload {
    /// Generates the workload for `spec`.
    pub fn build(spec: WorkloadSpec) -> Self {
        let p = spec.profile;
        let ws_bytes = p.ws_pages as u64 * PAGE_SIZE;
        let table_offset = ws_bytes as i64;
        let alloc_ctr_offset = table_offset + 8;

        // Scale per-kilo rates to the superblock.
        let scale = SUPERBLOCK_UNITS as f64 / 1000.0;
        let loads = (p.loads_pk as f64 * scale).round() as u32;
        let stores = (p.stores_pk as f64 * scale).round() as u32;
        let callrets = (p.callret_pk * scale).round().max(0.0) as u32;
        let indirects = (p.indirect_pk * scale).round().max(0.0) as u32;
        // Filler fills the remaining slot budget (callees retire ~3
        // instructions per pair, the indirect path ~5).
        let used = loads + stores + callrets * 4 + indirects * 5 + 16;
        let filler = SUPERBLOCK_UNITS.saturating_sub(used);

        let mut program = Program::new();
        program.add_function(FunctionBuilder::new("main").finish()); // placeholder
        let block_id = FuncId(1);
        let leaf_id = FuncId(2);
        let ileaf_id = FuncId(3);

        // --- the superblock ------------------------------------------------
        let mut slots: Vec<Slot> = Vec::with_capacity((loads + stores + filler) as usize);
        for i in 0..loads {
            slots.push(Slot::Load(i));
        }
        for i in 0..stores {
            slots.push(Slot::Store(i));
        }
        for _ in 0..callrets {
            slots.push(Slot::CallRet);
        }
        for _ in 0..indirects {
            slots.push(Slot::Indirect);
        }
        for i in 0..filler {
            slots.push(Slot::Filler(i));
        }
        // Deterministic per-benchmark interleaving.
        let seed = p.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
        slots.shuffle(&mut StdRng::seed_from_u64(seed));

        // ~90% of accesses hit a hot 4 KiB window (L1-resident, like real
        // SPEC locality); the rest stride cold through the working set,
        // which is what differentiates mcf/lbm from povray/hmmer in the
        // cache hierarchy.
        let stride = 264u64;
        let hot_span = 4096u64.min(ws_bytes) - 8;
        let span = ws_bytes - 8;
        let mut block = FunctionBuilder::new("block");
        block.push(Inst::MovImm {
            dst: Reg::Rcx,
            imm: 7,
        });
        for slot in &slots {
            match *slot {
                Slot::Load(i) => {
                    let off = if i % 10 != 9 {
                        (i as u64 * 88) % hot_span / 8 * 8
                    } else {
                        (i as u64 * stride) % span / 8 * 8
                    };
                    block.push(Inst::Load {
                        dst: Reg::Rax,
                        addr: Reg::R12,
                        offset: off as i64,
                    });
                }
                Slot::Store(i) => {
                    let off = if i % 10 != 9 {
                        (i as u64 * 72 + 16) % hot_span / 8 * 8
                    } else {
                        (i as u64 * stride * 3 + 128) % span / 8 * 8
                    };
                    block.push(Inst::Store {
                        src: Reg::Rcx,
                        addr: Reg::R12,
                        offset: off as i64,
                    });
                }
                Slot::CallRet => {
                    block.push(Inst::Call(leaf_id));
                }
                Slot::Indirect => {
                    block.push(Inst::Load {
                        dst: Reg::R8,
                        addr: Reg::R12,
                        offset: table_offset,
                    });
                    block.push(Inst::CallIndirect { target: Reg::R8 });
                }
                Slot::Filler(i) => {
                    block.push(Inst::AluImm {
                        op: if i % 3 == 0 { AluOp::Xor } else { AluOp::Add },
                        dst: Reg::Rax,
                        imm: (i as u64) | 1,
                    });
                }
            }
        }
        block.push(Inst::Ret);
        program.add_function(block.finish());
        debug_assert_eq!(program.functions.len() - 1, block_id.0 as usize);

        let mut leaf = FunctionBuilder::new("leaf");
        leaf.push(Inst::AluImm {
            op: AluOp::Add,
            dst: Reg::Rax,
            imm: 1,
        });
        leaf.push(Inst::Ret);
        program.add_function(leaf.finish());

        let mut ileaf = FunctionBuilder::new("ileaf");
        ileaf.push(Inst::AluImm {
            op: AluOp::Add,
            dst: Reg::Rax,
            imm: 3,
        });
        ileaf.push(Inst::Ret);
        program.add_function(ileaf.finish());

        // --- main loop ------------------------------------------------------
        let sys_every = (250.0 / p.syscalls_pm.max(0.01)).round().clamp(1.0, 1e7) as u64;
        let alloc_every = (250.0 / p.allocs_pm.max(0.01)).round().clamp(1.0, 1e7) as u64;

        let mut main = FunctionBuilder::new("main");
        let loop_top = main.new_label();
        let no_sys = main.new_label();
        let no_alloc = main.new_label();
        main.push(Inst::MovImm {
            dst: Reg::R12,
            imm: DATA_BASE,
        });
        main.push(Inst::MovImm {
            dst: Reg::Rbx,
            imm: spec.superblocks as u64,
        });
        main.push(Inst::MovImm {
            dst: Reg::Rbp,
            imm: sys_every,
        });
        main.bind(loop_top);
        main.push(Inst::Call(block_id));
        // System-call countdown in rbp.
        main.push(Inst::AluImm {
            op: AluOp::Sub,
            dst: Reg::Rbp,
            imm: 1,
        });
        main.push(Inst::MovImm {
            dst: Reg::R8,
            imm: 0,
        });
        main.push(Inst::JmpIf {
            cond: Cond::Ne,
            a: Reg::Rbp,
            b: Reg::R8,
            target: no_sys,
        });
        main.push(Inst::Syscall { nr: nr::GETPID });
        main.push(Inst::MovImm {
            dst: Reg::Rbp,
            imm: sys_every,
        });
        main.bind(no_sys);
        // Allocator countdown in data memory.
        main.push(Inst::Load {
            dst: Reg::Rcx,
            addr: Reg::R12,
            offset: alloc_ctr_offset,
        });
        main.push(Inst::AluImm {
            op: AluOp::Sub,
            dst: Reg::Rcx,
            imm: 1,
        });
        main.push(Inst::Store {
            src: Reg::Rcx,
            addr: Reg::R12,
            offset: alloc_ctr_offset,
        });
        main.push(Inst::MovImm {
            dst: Reg::R8,
            imm: 0,
        });
        main.push(Inst::JmpIf {
            cond: Cond::Ne,
            a: Reg::Rcx,
            b: Reg::R8,
            target: no_alloc,
        });
        main.push(Inst::MovImm {
            dst: Reg::Rdi,
            imm: 64,
        });
        main.push(Inst::Alloc { size: Reg::Rdi });
        main.push(Inst::Free { ptr: Reg::Rax });
        main.push(Inst::MovImm {
            dst: Reg::Rcx,
            imm: alloc_every,
        });
        main.push(Inst::Store {
            src: Reg::Rcx,
            addr: Reg::R12,
            offset: alloc_ctr_offset,
        });
        main.bind(no_alloc);
        // Loop control.
        main.push(Inst::AluImm {
            op: AluOp::Sub,
            dst: Reg::Rbx,
            imm: 1,
        });
        main.push(Inst::MovImm {
            dst: Reg::R8,
            imm: 0,
        });
        main.push(Inst::JmpIf {
            cond: Cond::Ne,
            a: Reg::Rbx,
            b: Reg::R8,
            target: loop_top,
        });
        main.push(Inst::MovImm {
            dst: Reg::Rax,
            imm: 0,
        });
        main.push(Inst::Halt);
        program.functions[0] = main.finish();

        Self {
            program,
            profile: p,
            superblocks: spec.superblocks,
            table_offset,
            alloc_ctr_offset,
            alloc_every,
            ileaf: ileaf_id,
        }
    }

    /// Maps the data region and initializes the function-pointer table
    /// and allocator countdown. Call once per fresh machine.
    pub fn prepare(&self, machine: &mut Machine) {
        let ws = self.profile.ws_pages as u64 * PAGE_SIZE;
        machine
            .space
            .map_region(VirtAddr(DATA_BASE), ws + PAGE_SIZE, PageFlags::rw());
        machine.space.poke(
            VirtAddr(DATA_BASE + self.table_offset as u64),
            &CodeAddr::entry(self.ileaf).encode().to_le_bytes(),
        );
        machine.space.poke(
            VirtAddr(DATA_BASE + self.alloc_ctr_offset as u64),
            &self.alloc_every.to_le_bytes(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{BenchProfile, SPEC2006};
    use memsentry_ir::verify;

    fn small(profile: &BenchProfile) -> Workload {
        Workload::build(WorkloadSpec {
            profile: *profile,
            superblocks: 10,
        })
    }

    #[test]
    fn every_profile_generates_a_verifiable_program() {
        for p in &SPEC2006 {
            let w = small(p);
            verify(&w.program).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn every_profile_runs_to_completion() {
        for p in &SPEC2006 {
            let w = small(p);
            let mut m = Machine::new(w.program.clone());
            w.prepare(&mut m);
            assert_eq!(m.run().expect_exit(), 0, "{}", p.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = BenchProfile::by_name("gcc").unwrap();
        let a = small(p);
        let b = small(p);
        assert_eq!(a.program, b.program);
    }

    #[test]
    fn measured_mix_tracks_the_profile() {
        let p = BenchProfile::by_name("perlbench").unwrap();
        let w = Workload::build(WorkloadSpec {
            profile: *p,
            superblocks: 50,
        });
        let mut m = Machine::new(w.program.clone());
        w.prepare(&mut m);
        m.run().expect_exit();
        let s = m.stats();
        let per_k = |x: u64| x as f64 * 1000.0 / s.instructions as f64;
        let loads = per_k(s.loads);
        let stores = per_k(s.stores);
        assert!(
            (loads - f64::from(p.loads_pk)).abs() / f64::from(p.loads_pk) < 0.15,
            "loads/k {loads} vs {}",
            p.loads_pk
        );
        assert!(
            (stores - f64::from(p.stores_pk)).abs() / f64::from(p.stores_pk) < 0.15,
            "stores/k {stores} vs {}",
            p.stores_pk
        );
        let pairs = per_k(s.calls.min(s.rets));
        // Block + leaf calls: block itself is one call per superblock.
        assert!(
            pairs > p.callret_pk * 0.7 && pairs < p.callret_pk * 1.6,
            "callret/k {pairs} vs {}",
            p.callret_pk
        );
        let ind = per_k(s.indirect_calls);
        assert!(
            (ind - p.indirect_pk).abs() < p.indirect_pk.max(0.2),
            "indirect/k {ind} vs {}",
            p.indirect_pk
        );
    }

    #[test]
    fn syscall_and_alloc_rates_are_honoured() {
        let p = BenchProfile::by_name("gcc").unwrap(); // 60/M syscalls, 200/M allocs
        let w = Workload::build(WorkloadSpec {
            profile: *p,
            superblocks: 60,
        });
        let mut m = Machine::new(w.program.clone());
        w.prepare(&mut m);
        m.run().expect_exit();
        let s = m.stats();
        let per_m = |x: u64| x as f64 * 1e6 / s.instructions as f64;
        let sys = per_m(s.syscalls);
        assert!(
            sys > p.syscalls_pm * 0.5 && sys < p.syscalls_pm * 2.0,
            "syscalls/M {sys} vs {}",
            p.syscalls_pm
        );
        assert!(s.allocator_calls > 0, "allocator exercised");
    }

    #[test]
    fn memory_heavy_profiles_have_higher_cpi() {
        // mcf's 64-page working set must cost more per instruction than
        // povray's 6-page one.
        let run = |name: &str| {
            let p = BenchProfile::by_name(name).unwrap();
            let w = Workload::build(WorkloadSpec {
                profile: *p,
                superblocks: 30,
            });
            let mut m = Machine::new(w.program.clone());
            w.prepare(&mut m);
            m.run().expect_exit();
            m.stats().cpi()
        };
        assert!(run("mcf") > run("povray"));
    }
}
