#![warn(missing_docs)]

//! SPEC CPU2006-like workloads for the simulated machine.
//!
//! The paper evaluates MemSentry on the 19 C/C++ benchmarks of SPEC
//! CPU2006. SPEC itself is proprietary and runs on real hardware, so this
//! crate substitutes deterministic synthetic workloads with *per-benchmark
//! instruction mixes*: loads, stores, call/ret pairs, indirect branches,
//! system calls and allocator calls per kilo-instruction, a working-set
//! size that drives TLB behaviour, and an `xmm` intensity that models how
//! much the benchmark loses when crypt confiscates the `ymm` register
//! uppers (paper §6.2: "for benchmarks that already heavily rely on the
//! xmm registers, crypt incurs a more significant performance overhead").
//!
//! The substitution preserves what the figures measure: overhead is a
//! function of (event frequency x per-event instrumentation cost) over a
//! baseline cycle budget, so matching the mixes reproduces the *shape* of
//! Figures 3-6 without the authors' testbed. See DESIGN.md §2.

pub mod generator;
pub mod kernels;
pub mod profiles;

pub use generator::{Workload, WorkloadSpec, DATA_BASE};
pub use kernels::{hashtable_kernel, matmul_kernel, sort_kernel, Kernel};
pub use profiles::{BenchProfile, SERVERS, SPEC2006};
