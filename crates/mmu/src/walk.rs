//! Software-walked 4-level page tables stored in simulated physical memory.
//!
//! The tables live inside [`PhysMemory`] frames exactly like a real kernel's
//! do, so a page-table walk is a chain of physical reads. The walker counts
//! the levels it touches; the CPU cost model converts walks into memory
//! accesses when a TLB miss occurs.

use crate::addr::{PhysAddr, VirtAddr};
use crate::phys::PhysMemory;
use crate::pte::{PageFlags, Pte};

/// Number of paging levels (PML4 .. PT).
pub const LEVELS: u32 = 4;

/// A 4-level page table identified by its root frame.
#[derive(Debug, Clone, Copy)]
pub struct PageTable {
    root: PhysAddr,
}

/// Result of a successful leaf walk.
#[derive(Debug, Clone, Copy)]
pub struct WalkResult {
    /// The leaf entry.
    pub pte: Pte,
    /// Physical location of the leaf entry (for updates).
    pub pte_addr: PhysAddr,
    /// Number of table levels read (always 4 here; useful for costing).
    pub levels_touched: u32,
}

impl PageTable {
    /// Allocates an empty root table.
    pub fn new(pm: &mut PhysMemory) -> Self {
        Self {
            root: pm.alloc_frame(),
        }
    }

    /// The root frame (what `cr3` would hold).
    pub fn root(&self) -> PhysAddr {
        self.root
    }

    fn entry_addr(table: PhysAddr, va: VirtAddr, level: u32) -> PhysAddr {
        PhysAddr(table.0 + va.pt_index(level) * 8)
    }

    /// Walks to the leaf entry for `va`, returning `None` if any level is
    /// not present.
    pub fn walk(&self, pm: &mut PhysMemory, va: VirtAddr) -> Option<WalkResult> {
        let mut table = self.root;
        let mut touched = 0;
        for level in (1..LEVELS).rev() {
            touched += 1;
            let pte = Pte(pm.read_u64(Self::entry_addr(table, va, level)));
            if !pte.present() {
                return None;
            }
            table = pte.addr();
        }
        touched += 1;
        let pte_addr = Self::entry_addr(table, va, 0);
        let pte = Pte(pm.read_u64(pte_addr));
        if !pte.present() {
            return None;
        }
        Some(WalkResult {
            pte,
            pte_addr,
            levels_touched: touched,
        })
    }

    fn walk_or_create(&self, pm: &mut PhysMemory, va: VirtAddr) -> PhysAddr {
        let mut table = self.root;
        for level in (1..LEVELS).rev() {
            let entry_addr = Self::entry_addr(table, va, level);
            let pte = Pte(pm.read_u64(entry_addr));
            table = if pte.present() {
                pte.addr()
            } else {
                let next = pm.alloc_frame();
                pm.write_u64(entry_addr, Pte::table(next).0);
                next
            };
        }
        Self::entry_addr(table, va, 0)
    }

    /// Fallible variant of `walk_or_create`: `None` once the frame
    /// allocator is exhausted. Intermediate tables created before the
    /// exhaustion point stay in place (they are valid, just empty).
    fn try_walk_or_create(&self, pm: &mut PhysMemory, va: VirtAddr) -> Option<PhysAddr> {
        let mut table = self.root;
        for level in (1..LEVELS).rev() {
            let entry_addr = Self::entry_addr(table, va, level);
            let pte = Pte(pm.read_u64(entry_addr));
            table = if pte.present() {
                pte.addr()
            } else {
                let next = pm.try_alloc_frame()?;
                pm.write_u64(entry_addr, Pte::table(next).0);
                next
            };
        }
        Some(Self::entry_addr(table, va, 0))
    }

    /// Maps the page containing `va` to `frame` with `flags`.
    ///
    /// Remapping an already-mapped page overwrites the previous entry (the
    /// caller is the "kernel" and is trusted to flush the TLB).
    pub fn map(&self, pm: &mut PhysMemory, va: VirtAddr, frame: PhysAddr, flags: PageFlags) {
        let leaf = self.walk_or_create(pm, va);
        pm.write_u64(leaf, Pte::leaf(frame, flags).0);
    }

    /// Maps the page containing `va` to a freshly allocated zero frame.
    pub fn map_anon(&self, pm: &mut PhysMemory, va: VirtAddr, flags: PageFlags) -> PhysAddr {
        let frame = pm.alloc_frame();
        self.map(pm, va, frame, flags);
        frame
    }

    /// Fallible variant of [`Self::map_anon`]: returns `None` when the
    /// physical frame allocator is exhausted (see
    /// [`PhysMemory::set_frame_limit`]) instead of panicking, so demand
    /// paths can surface a typed out-of-memory error.
    pub fn try_map_anon(
        &self,
        pm: &mut PhysMemory,
        va: VirtAddr,
        flags: PageFlags,
    ) -> Option<PhysAddr> {
        let leaf = self.try_walk_or_create(pm, va)?;
        let frame = pm.try_alloc_frame()?;
        pm.write_u64(leaf, Pte::leaf(frame, flags).0);
        Some(frame)
    }

    /// Removes the mapping of the page containing `va`; returns the frame
    /// that was mapped, if any.
    pub fn unmap(&self, pm: &mut PhysMemory, va: VirtAddr) -> Option<PhysAddr> {
        let res = self.walk(pm, va)?;
        pm.write_u64(res.pte_addr, 0);
        Some(res.pte.addr())
    }

    /// Applies `update` to the leaf entry of `va`; returns `false` if the
    /// page is unmapped.
    pub fn update_leaf(
        &self,
        pm: &mut PhysMemory,
        va: VirtAddr,
        update: impl FnOnce(&mut Pte),
    ) -> bool {
        match self.walk(pm, va) {
            Some(res) => {
                let mut pte = res.pte;
                update(&mut pte);
                pm.write_u64(res.pte_addr, pte.0);
                true
            }
            None => false,
        }
    }

    /// Changes the permission flags of the page containing `va`.
    pub fn protect(&self, pm: &mut PhysMemory, va: VirtAddr, flags: PageFlags) -> bool {
        self.update_leaf(pm, va, |pte| pte.set_flags(flags))
    }

    /// Assigns MPK protection key `key` to the page containing `va`.
    pub fn set_pkey(&self, pm: &mut PhysMemory, va: VirtAddr, key: u8) -> bool {
        self.update_leaf(pm, va, |pte| pte.set_pkey(key))
    }

    /// Translates `va` to a physical address, or `None` if unmapped.
    pub fn translate(&self, pm: &mut PhysMemory, va: VirtAddr) -> Option<PhysAddr> {
        let res = self.walk(pm, va)?;
        Some(PhysAddr(res.pte.addr().0 + va.page_offset()))
    }

    /// Enumerates every leaf mapping `(page_va, pte)` in the table.
    ///
    /// Used to clone an address-space view for the page-table-switching
    /// technique (each view keeps its own copy of the leaf entries).
    pub fn mappings(&self, pm: &mut PhysMemory) -> Vec<(VirtAddr, Pte)> {
        let mut out = Vec::new();
        self.collect(pm, self.root, 3, 0, &mut out);
        out
    }

    fn collect(
        &self,
        pm: &mut PhysMemory,
        table: PhysAddr,
        level: u32,
        va_prefix: u64,
        out: &mut Vec<(VirtAddr, Pte)>,
    ) {
        for index in 0..512u64 {
            let pte = Pte(pm.read_u64(PhysAddr(table.0 + index * 8)));
            if !pte.present() {
                continue;
            }
            let va = va_prefix | (index << (12 + 9 * level));
            if level == 0 {
                out.push((VirtAddr(va), pte));
            } else {
                self.collect(pm, pte.addr(), level - 1, va, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMemory, PageTable) {
        let mut pm = PhysMemory::new();
        let pt = PageTable::new(&mut pm);
        (pm, pt)
    }

    #[test]
    fn unmapped_address_walks_to_none() {
        let (mut pm, pt) = setup();
        assert!(pt.walk(&mut pm, VirtAddr(0x4000)).is_none());
        assert!(pt.translate(&mut pm, VirtAddr(0x4000)).is_none());
    }

    #[test]
    fn map_then_translate() {
        let (mut pm, pt) = setup();
        let frame = pm.alloc_frame();
        pt.map(&mut pm, VirtAddr(0x7fff_0000), frame, PageFlags::rw());
        let pa = pt.translate(&mut pm, VirtAddr(0x7fff_0123)).unwrap();
        assert_eq!(pa, PhysAddr(frame.0 + 0x123));
    }

    #[test]
    fn distinct_pages_do_not_alias() {
        let (mut pm, pt) = setup();
        let f1 = pt.map_anon(&mut pm, VirtAddr(0x1000), PageFlags::rw());
        let f2 = pt.map_anon(&mut pm, VirtAddr(0x2000), PageFlags::rw());
        assert_ne!(f1, f2);
        pm.write(f1, b"one");
        pm.write(f2, b"two");
        let pa1 = pt.translate(&mut pm, VirtAddr(0x1000)).unwrap();
        let mut buf = [0u8; 3];
        pm.read(pa1, &mut buf);
        assert_eq!(&buf, b"one");
    }

    #[test]
    fn high_addresses_use_distinct_pml4_slots() {
        let (mut pm, pt) = setup();
        // 64 TB (sensitive partition) and a low address.
        let hi = VirtAddr(64 << 40);
        let lo = VirtAddr(0x40_0000);
        pt.map_anon(&mut pm, hi, PageFlags::rw());
        pt.map_anon(&mut pm, lo, PageFlags::rw());
        assert!(pt.translate(&mut pm, hi).is_some());
        assert!(pt.translate(&mut pm, lo).is_some());
        assert_ne!(hi.pt_index(3), lo.pt_index(3));
    }

    #[test]
    fn unmap_removes_translation_and_returns_frame() {
        let (mut pm, pt) = setup();
        let frame = pt.map_anon(&mut pm, VirtAddr(0x9000), PageFlags::rw());
        assert_eq!(pt.unmap(&mut pm, VirtAddr(0x9000)), Some(frame));
        assert!(pt.translate(&mut pm, VirtAddr(0x9000)).is_none());
        assert_eq!(pt.unmap(&mut pm, VirtAddr(0x9000)), None);
    }

    #[test]
    fn protect_flips_writability() {
        let (mut pm, pt) = setup();
        pt.map_anon(&mut pm, VirtAddr(0x9000), PageFlags::rw());
        assert!(pt.protect(&mut pm, VirtAddr(0x9000), PageFlags::ro()));
        let res = pt.walk(&mut pm, VirtAddr(0x9000)).unwrap();
        assert!(!res.pte.flags().writable);
    }

    #[test]
    fn set_pkey_tags_only_target_page() {
        let (mut pm, pt) = setup();
        pt.map_anon(&mut pm, VirtAddr(0xa000), PageFlags::rw());
        pt.map_anon(&mut pm, VirtAddr(0xb000), PageFlags::rw());
        assert!(pt.set_pkey(&mut pm, VirtAddr(0xa000), 4));
        assert_eq!(pt.walk(&mut pm, VirtAddr(0xa000)).unwrap().pte.pkey(), 4);
        assert_eq!(pt.walk(&mut pm, VirtAddr(0xb000)).unwrap().pte.pkey(), 0);
    }

    #[test]
    fn walk_touches_four_levels() {
        let (mut pm, pt) = setup();
        pt.map_anon(&mut pm, VirtAddr(0xc000), PageFlags::rw());
        let res = pt.walk(&mut pm, VirtAddr(0xc000)).unwrap();
        assert_eq!(res.levels_touched, 4);
    }

    #[test]
    fn remap_overwrites_previous_frame() {
        let (mut pm, pt) = setup();
        let f1 = pt.map_anon(&mut pm, VirtAddr(0xd000), PageFlags::rw());
        let f2 = pm.alloc_frame();
        pt.map(&mut pm, VirtAddr(0xd000), f2, PageFlags::ro());
        let res = pt.walk(&mut pm, VirtAddr(0xd000)).unwrap();
        assert_eq!(res.pte.addr(), f2);
        assert_ne!(res.pte.addr(), f1);
        assert!(!res.pte.flags().writable);
    }
}
