//! A tiny structural digest for semantic machine state.
//!
//! The replay subsystem (`memsentry-cpu`'s `replay` module) needs to
//! compare "is the machine at boundary *N* reached via checkpoint +
//! delta-restore bit-identical to the same boundary reached from the
//! start?" without holding two full machines alive. Rather than derive
//! `Hash` — which would drag bookkeeping fields (dirty-frame lists,
//! translation memos, LRU statistics epochs) into the comparison — each
//! state-bearing type exposes a `digest_into` method that feeds exactly
//! its *semantic* state into this digest, in a documented, stable order.
//!
//! The hash itself is FNV-1a over 64 bits: not cryptographic, but
//! deterministic across platforms and runs (no `RandomState`), cheap,
//! and entirely dependency-free. Collisions are astronomically unlikely
//! for the test-sized states compared here, and every digest equality
//! asserted in tests is backed by an independent field-by-field check in
//! at least one proptest.

/// An incremental FNV-1a 64-bit hasher with a stable, seedless basis.
///
/// Feed state with [`Digest::write_u64`] / [`Digest::write_bytes`] and
/// extract the value with [`Digest::finish`]. Two digests are comparable
/// only if both sides fed the same field sequence — the per-type
/// `digest_into` methods define that sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    /// A fresh digest at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Feeds one byte.
    #[inline]
    pub fn write_u8(&mut self, byte: u8) {
        self.state ^= byte as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Feeds a `u64` as eight little-endian bytes.
    #[inline]
    pub fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    /// Feeds a byte slice, length-prefixed so adjacent slices cannot
    /// alias (`[a,b] ++ [c]` digests differently from `[a] ++ [b,c]`).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_digest_is_the_offset_basis() {
        assert_eq!(Digest::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn known_fnv1a_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c.
        let mut d = Digest::new();
        d.write_u8(b'a');
        assert_eq!(d.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn order_matters() {
        let mut ab = Digest::new();
        ab.write_u64(1);
        ab.write_u64(2);
        let mut ba = Digest::new();
        ba.write_u64(2);
        ba.write_u64(1);
        assert_ne!(ab.finish(), ba.finish());
    }

    #[test]
    fn length_prefix_separates_adjacent_slices() {
        let mut split = Digest::new();
        split.write_bytes(&[1, 2]);
        split.write_bytes(&[3]);
        let mut shifted = Digest::new();
        shifted.write_bytes(&[1]);
        shifted.write_bytes(&[2, 3]);
        assert_ne!(split.finish(), shifted.finish());
    }
}
