//! The MPK `pkru` register.
//!
//! `pkru` holds two bits per protection key: access-disable (AD, even bit)
//! and write-disable (WD, odd bit), for 16 keys. User code reads it with
//! `rdpkru` and writes it with `wrpkru` — which is exactly what makes MPK
//! usable for safe-region isolation from user space (paper §3.1).

/// Number of protection keys supported by MPK.
pub const PKEY_COUNT: usize = 16;

/// The 32-bit `pkru` register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pkru(pub u32);

impl Pkru {
    /// A `pkru` value that permits everything (all bits clear).
    pub fn allow_all() -> Self {
        Pkru(0)
    }

    /// A `pkru` value that denies all access to `key` and permits the rest.
    ///
    /// This is the steady state of the MPK technique: the sensitive domain's
    /// key is access-disabled except inside instrumentation points.
    pub fn deny_key(key: u8) -> Self {
        let mut p = Pkru(0);
        p.set_access_disable(key, true);
        p.set_write_disable(key, true);
        p
    }

    fn bit(key: u8, write: bool) -> u32 {
        assert!((key as usize) < PKEY_COUNT, "pkey {key} out of range");
        1 << (2 * key as u32 + write as u32)
    }

    /// Whether reads (any access) to pages with `key` are disabled.
    #[inline]
    pub fn access_disabled(self, key: u8) -> bool {
        self.0 & Self::bit(key, false) != 0
    }

    /// Whether writes to pages with `key` are disabled.
    #[inline]
    pub fn write_disabled(self, key: u8) -> bool {
        self.0 & Self::bit(key, true) != 0
    }

    /// Sets or clears the access-disable bit of `key`.
    pub fn set_access_disable(&mut self, key: u8, disable: bool) {
        if disable {
            self.0 |= Self::bit(key, false);
        } else {
            self.0 &= !Self::bit(key, false);
        }
    }

    /// Sets or clears the write-disable bit of `key`.
    pub fn set_write_disable(&mut self, key: u8, disable: bool) {
        if disable {
            self.0 |= Self::bit(key, true);
        } else {
            self.0 &= !Self::bit(key, true);
        }
    }

    /// Permission check as the hardware performs it on a data access.
    ///
    /// Key 0 is subject to the same bits as the others; the kernel simply
    /// never disables it for ordinary memory.
    #[inline]
    pub fn permits(self, key: u8, write: bool) -> bool {
        if self.access_disabled(key) {
            return false;
        }
        if write && self.write_disabled(key) {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_permits_everything() {
        let p = Pkru::allow_all();
        for key in 0..PKEY_COUNT as u8 {
            assert!(p.permits(key, false));
            assert!(p.permits(key, true));
        }
    }

    #[test]
    fn deny_key_blocks_only_that_key() {
        let p = Pkru::deny_key(5);
        assert!(!p.permits(5, false));
        assert!(!p.permits(5, true));
        for key in (0..PKEY_COUNT as u8).filter(|&k| k != 5) {
            assert!(p.permits(key, true), "key {key} should be unaffected");
        }
    }

    #[test]
    fn write_disable_alone_keeps_reads() {
        let mut p = Pkru::allow_all();
        p.set_write_disable(7, true);
        assert!(p.permits(7, false), "reads stay allowed");
        assert!(!p.permits(7, true), "writes are blocked");
    }

    #[test]
    fn access_disable_blocks_reads_and_writes() {
        let mut p = Pkru::allow_all();
        p.set_access_disable(3, true);
        assert!(!p.permits(3, false));
        assert!(!p.permits(3, true));
    }

    #[test]
    fn bit_layout_matches_sdm() {
        // AD(k) = bit 2k, WD(k) = bit 2k+1.
        let mut p = Pkru::allow_all();
        p.set_access_disable(1, true);
        assert_eq!(p.0, 0b0100);
        p.set_write_disable(1, true);
        assert_eq!(p.0, 0b1100);
        p.set_access_disable(0, true);
        assert_eq!(p.0, 0b1101);
    }

    #[test]
    fn toggling_restores_permission() {
        // The MPK instrumentation opens and closes the domain: verify a
        // full wrpkru round trip.
        let mut p = Pkru::deny_key(9);
        p.set_access_disable(9, false);
        p.set_write_disable(9, false);
        assert!(p.permits(9, true));
        p.set_access_disable(9, true);
        p.set_write_disable(9, true);
        assert!(!p.permits(9, false));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_key_panics() {
        Pkru::allow_all().permits(16, false);
    }
}
