//! Sparse simulated physical memory.
//!
//! Frames are allocated lazily: the guest can map any physical frame and the
//! backing storage appears on first touch. A bump frame allocator hands out
//! fresh frames for page tables and anonymous mappings.
//!
//! Frame numbers are dense small integers (the bump allocator starts at 1),
//! so the backing store is a `Vec` indexed by frame number rather than a
//! hash map: the simulator's memory pipeline resolves a frame with one
//! bounds-checked index instead of a hash per byte.

use crate::addr::{PhysAddr, PAGE_SIZE};
use crate::digest::Digest;

/// Simulated physical memory: lazily materialized 4 KiB frames indexed by
/// frame number.
#[derive(Debug, Default, Clone)]
pub struct PhysMemory {
    frames: Vec<Option<Box<[u8]>>>,
    materialized: usize,
    next_free_pfn: u64,
    frame_limit: Option<u64>,
    /// Dirty-frame tracking for [`Self::restore_from`]: while `tracking`
    /// is on, every frame handed out by `frame_mut` (i.e. every frame a
    /// read, write or allocation touches) is recorded in `dirty`, with
    /// `dirty_bits` deduplicating the list. The fields are bookkeeping,
    /// not memory contents — two memories with equal frames are
    /// semantically equal regardless of their tracking state.
    tracking: bool,
    dirty: Vec<u64>,
    dirty_bits: Vec<u64>,
}

impl PhysMemory {
    /// Creates empty physical memory whose frame allocator starts at
    /// frame 1 (frame 0 is reserved so a zero PTE can never look mapped).
    pub fn new() -> Self {
        Self {
            frames: Vec::new(),
            materialized: 0,
            next_free_pfn: 1,
            frame_limit: None,
            tracking: false,
            dirty: Vec::new(),
            dirty_bits: Vec::new(),
        }
    }

    /// Starts (or restarts) dirty-frame tracking: the dirty list is
    /// cleared and every frame touched from now on is recorded, so a
    /// later [`Self::restore_from`] can rewind by copying only those
    /// frames. Call this at the moment `self` is byte-identical to the
    /// memory it will later be rewound to.
    pub fn start_tracking(&mut self) {
        self.tracking = true;
        for w in &mut self.dirty_bits {
            *w = 0;
        }
        self.dirty.clear();
    }

    /// Rewinds `self` to the state of `src` by copying back only the
    /// frames dirtied since [`Self::start_tracking`] (or the previous
    /// `restore_from`) — the incremental counterpart of a full clone.
    ///
    /// Correctness precondition: `self` was byte-identical to `src` when
    /// tracking last (re)started and has only been mutated through this
    /// type's methods since; every such mutation passes through
    /// `frame_mut` and is therefore in the dirty list. The dirty list is
    /// cleared afterwards, so consecutive rewinds to the same `src` keep
    /// working.
    pub fn restore_from(&mut self, src: &PhysMemory) {
        for i in 0..self.dirty.len() {
            let idx = self.dirty[i] as usize;
            match src.frames.get(idx).and_then(|s| s.as_deref()) {
                Some(sf) => match &mut self.frames[idx] {
                    Some(f) => f.copy_from_slice(sf),
                    slot => *slot = Some(Box::from(sf)),
                },
                None => self.frames[idx] = None,
            }
        }
        for w in &mut self.dirty_bits {
            *w = 0;
        }
        self.dirty.clear();
        self.materialized = src.materialized;
        self.next_free_pfn = src.next_free_pfn;
        self.frame_limit = src.frame_limit;
    }

    /// Caps the bump allocator at `limit` frames total (counting the
    /// reserved frame 0). `None` removes the cap. Used to model physical
    /// memory exhaustion: once the cap is hit, [`Self::try_alloc_frame`]
    /// returns `None` and mapping paths surface a typed out-of-memory
    /// error instead of allocating forever.
    pub fn set_frame_limit(&mut self, limit: Option<u64>) {
        self.frame_limit = limit;
    }

    /// Allocates a fresh, zeroed frame and returns its base address.
    ///
    /// # Panics
    ///
    /// Panics if a frame limit is set and exhausted; setup-time callers
    /// (page-table construction for trusted mappings) are expected to run
    /// before any limit is imposed. Fallible callers use
    /// [`Self::try_alloc_frame`].
    pub fn alloc_frame(&mut self) -> PhysAddr {
        match self.try_alloc_frame() {
            Some(pa) => pa,
            None => panic!("physical frame allocator exhausted (limit hit at setup time)"),
        }
    }

    /// Allocates a fresh, zeroed frame, or `None` once the configured
    /// frame limit is exhausted.
    pub fn try_alloc_frame(&mut self) -> Option<PhysAddr> {
        if let Some(limit) = self.frame_limit {
            if self.next_free_pfn >= limit {
                return None;
            }
        }
        let pfn = self.next_free_pfn;
        self.next_free_pfn += 1;
        // Materialize eagerly and zero: the frame is about to be used as a
        // page table or mapped memory, even if a stray demand touch already
        // materialized it.
        self.frame_mut(pfn).fill(0);
        Some(PhysAddr(pfn << 12))
    }

    /// Number of frames currently materialized.
    pub fn frame_count(&self) -> usize {
        self.materialized
    }

    #[inline]
    fn frame_mut(&mut self, pfn: u64) -> &mut [u8] {
        let idx = pfn as usize;
        if self.tracking {
            let w = idx >> 6;
            if w >= self.dirty_bits.len() {
                self.dirty_bits.resize(w + 1, 0);
            }
            let bit = 1u64 << (idx & 63);
            if self.dirty_bits[w] & bit == 0 {
                self.dirty_bits[w] |= bit;
                self.dirty.push(pfn);
            }
        }
        if idx >= self.frames.len() {
            self.frames.resize_with(idx + 1, || None);
        }
        let slot = &mut self.frames[idx];
        if slot.is_none() {
            self.materialized += 1;
        }
        slot.get_or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Feeds the memory's semantic state into `d`: every materialized
    /// frame with nonzero content (as `(pfn, bytes)` in frame order),
    /// the count of such frames, the allocator cursor, and the frame
    /// limit. A frame that is materialized but all-zero digests the same
    /// as an unmaterialized one — demand materialization is an
    /// implementation artifact, not guest-visible state — and the
    /// dirty-tracking bookkeeping is excluded entirely.
    pub fn digest_into(&self, d: &mut Digest) {
        let mut nonzero = 0u64;
        for (pfn, frame) in self.frames.iter().enumerate() {
            if let Some(frame) = frame {
                if frame.iter().any(|&b| b != 0) {
                    nonzero += 1;
                    d.write_u64(pfn as u64);
                    d.write_bytes(frame);
                }
            }
        }
        d.write_u64(nonzero);
        d.write_u64(self.next_free_pfn);
        match self.frame_limit {
            Some(limit) => {
                d.write_u8(1);
                d.write_u64(limit);
            }
            None => d.write_u8(0),
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`, crossing frames as needed.
    pub fn read(&mut self, addr: PhysAddr, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let pos = addr.0 + done as u64;
            let off = (pos & (PAGE_SIZE - 1)) as usize;
            let in_frame = (PAGE_SIZE as usize - off).min(buf.len() - done);
            let frame = self.frame_mut(pos >> 12);
            buf[done..done + in_frame].copy_from_slice(&frame[off..off + in_frame]);
            done += in_frame;
        }
    }

    /// Writes `buf` starting at `addr`, crossing frames as needed.
    pub fn write(&mut self, addr: PhysAddr, buf: &[u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let pos = addr.0 + done as u64;
            let off = (pos & (PAGE_SIZE - 1)) as usize;
            let in_frame = (PAGE_SIZE as usize - off).min(buf.len() - done);
            let frame = self.frame_mut(pos >> 12);
            frame[off..off + in_frame].copy_from_slice(&buf[done..done + in_frame]);
            done += in_frame;
        }
    }

    /// Reads a little-endian u64 at `addr`.
    #[inline(always)]
    pub fn read_u64(&mut self, addr: PhysAddr) -> u64 {
        if addr.frame_offset() <= PAGE_SIZE - 8 {
            // A pure read of an already-materialized frame changes no
            // state, so it can skip `frame_mut`'s dirty-tracking and
            // materialization bookkeeping entirely.
            if let Some(Some(frame)) = self.frames.get(addr.pfn() as usize) {
                let off = addr.frame_offset() as usize;
                let mut buf = [0u8; 8];
                buf.copy_from_slice(&frame[off..off + 8]);
                return u64::from_le_bytes(buf);
            }
            // Unmaterialized: demand-materialize (a state change, so it
            // goes through the tracked accessor) and read the zeros.
            let off = addr.frame_offset() as usize;
            let frame = self.frame_mut(addr.pfn());
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&frame[off..off + 8]);
            u64::from_le_bytes(buf)
        } else {
            let mut buf = [0u8; 8];
            self.read(addr, &mut buf);
            u64::from_le_bytes(buf)
        }
    }

    /// Writes a little-endian u64 at `addr`.
    #[inline(always)]
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) {
        if addr.frame_offset() <= PAGE_SIZE - 8 {
            let off = addr.frame_offset() as usize;
            let frame = self.frame_mut(addr.pfn());
            frame[off..off + 8].copy_from_slice(&value.to_le_bytes());
        } else {
            self.write(addr, &value.to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_distinct_zeroed_frames() {
        let mut pm = PhysMemory::new();
        let a = pm.alloc_frame();
        let b = pm.alloc_frame();
        assert_ne!(a, b);
        assert_eq!(a.frame_offset(), 0);
        let mut buf = [1u8; 16];
        pm.read(a, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn frame_zero_is_never_allocated() {
        let mut pm = PhysMemory::new();
        for _ in 0..64 {
            assert_ne!(pm.alloc_frame().pfn(), 0);
        }
    }

    #[test]
    fn read_write_roundtrip_within_frame() {
        let mut pm = PhysMemory::new();
        let f = pm.alloc_frame();
        pm.write(PhysAddr(f.0 + 100), b"memsentry");
        let mut buf = [0u8; 9];
        pm.read(PhysAddr(f.0 + 100), &mut buf);
        assert_eq!(&buf, b"memsentry");
    }

    #[test]
    fn read_write_cross_frame_boundary() {
        let mut pm = PhysMemory::new();
        let base = PhysAddr((42 << 12) + PAGE_SIZE - 4);
        pm.write(base, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut buf = [0u8; 8];
        pm.read(base, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn u64_accessors_are_little_endian() {
        let mut pm = PhysMemory::new();
        let f = pm.alloc_frame();
        pm.write_u64(f, 0x0102_0304_0506_0708);
        let mut buf = [0u8; 8];
        pm.read(f, &mut buf);
        assert_eq!(buf, [8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(pm.read_u64(f), 0x0102_0304_0506_0708);
    }

    #[test]
    fn u64_accessors_cross_frame_boundary() {
        let mut pm = PhysMemory::new();
        let base = PhysAddr((7 << 12) + PAGE_SIZE - 3);
        pm.write_u64(base, 0x0102_0304_0506_0708);
        assert_eq!(pm.read_u64(base), 0x0102_0304_0506_0708);
        let mut buf = [0u8; 8];
        pm.read(base, &mut buf);
        assert_eq!(buf, [8, 7, 6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn frame_limit_bounds_the_allocator() {
        let mut pm = PhysMemory::new();
        pm.set_frame_limit(Some(3));
        // Frames 1 and 2 fit under the cap of 3 (frame 0 is reserved).
        assert!(pm.try_alloc_frame().is_some());
        assert!(pm.try_alloc_frame().is_some());
        assert!(pm.try_alloc_frame().is_none());
        // Lifting the cap resumes allocation.
        pm.set_frame_limit(None);
        assert!(pm.try_alloc_frame().is_some());
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn infallible_alloc_panics_at_the_limit() {
        let mut pm = PhysMemory::new();
        pm.set_frame_limit(Some(1));
        pm.alloc_frame();
    }

    #[test]
    fn tracked_restore_rewinds_exactly_to_the_source() {
        let mut pm = PhysMemory::new();
        let a = pm.alloc_frame();
        let b = pm.alloc_frame();
        pm.write(a, b"before");
        let src = pm.clone();
        pm.start_tracking();

        // Mutate existing frames, materialize a new one, and move the
        // allocator cursor; the delta restore must revert all of it.
        pm.write(a, b"mutated");
        pm.write(b, &[9u8; 64]);
        pm.write(PhysAddr(77 << 12), &[1]);
        pm.alloc_frame();
        pm.restore_from(&src);

        let mut buf = [0u8; 6];
        pm.read(a, &mut buf);
        assert_eq!(&buf, b"before");
        let mut buf = [0u8; 64];
        pm.read(b, &mut buf);
        assert_eq!(buf, [0u8; 64]);
        assert_eq!(pm.next_free_pfn, src.next_free_pfn);
        // The demand-touched frame 77 is de-materialized again (the reads
        // above only touched the already-materialized a and b).
        assert_eq!(pm.frame_count(), src.frame_count());
    }

    #[test]
    fn repeated_tracked_restores_keep_working() {
        let mut pm = PhysMemory::new();
        let a = pm.alloc_frame();
        pm.write_u64(a, 1);
        let src = pm.clone();
        pm.start_tracking();
        for round in 2..6u64 {
            pm.write_u64(a, round);
            pm.write(PhysAddr(a.0 + 512), &[round as u8; 16]);
            pm.restore_from(&src);
            assert_eq!(pm.read_u64(a), 1, "round {round}");
        }
    }

    #[test]
    fn untouched_frames_stay_unmaterialized() {
        let mut pm = PhysMemory::new();
        pm.alloc_frame();
        assert_eq!(pm.frame_count(), 1);
        // A demand touch far past the allocator cursor materializes only
        // that frame.
        pm.write(PhysAddr(99 << 12), &[1]);
        assert_eq!(pm.frame_count(), 2);
    }
}
