#![warn(missing_docs)]

//! Simulated memory-management substrate for the MemSentry reproduction.
//!
//! The paper's isolation techniques are all, at bottom, properties of the
//! x86-64 address-translation pipeline: page permissions, protection keys
//! (MPK), and extended page tables (EPT, for VMFUNC). This crate models that
//! pipeline faithfully enough for deterministic enforcement:
//!
//! * [`phys`] — sparse simulated physical memory, frame-granular.
//! * [`pte`] — 64-bit page-table-entry layout including the 4 protection-key
//!   bits (62:59), matching the Intel SDM.
//! * [`walk`] — 4-level page tables *stored inside simulated physical
//!   memory* and walked in software, with map/unmap/protect operations.
//! * [`tlb`] — a small set-associative TLB with hit/miss statistics, which
//!   the CPU cost model turns into cycles.
//! * [`pkey`] — the `pkru` register: 16 keys x {access-disable,
//!   write-disable}, exactly the rdpkru/wrpkru bit layout.
//! * [`ept`] — extended page tables: guest-physical to host-physical
//!   mapping with per-EPT permissions and "secret" pages present in only
//!   one EPT (the VMFUNC technique's mechanism).
//! * [`space`] — [`space::AddressSpace`]: the composed translation pipeline
//!   (TLB -> page walk -> pkey check -> optional EPT check) that the CPU
//!   performs loads and stores through, plus an `mprotect`-style interface
//!   used by the paper's page-permission baseline.
//! * [`digest`] — a deterministic structural hasher; each type above feeds
//!   its *semantic* state (never restore-tracking or memo bookkeeping)
//!   into a [`digest::Digest`], which the replay subsystem uses to assert
//!   bit-equality between rewound and from-start machine states.
//!
//! All checks return typed [`Fault`]s; nothing panics on a bad guest access.

pub mod addr;
pub mod cache;
pub mod digest;
pub mod ept;
pub mod phys;
pub mod pkey;
pub mod pte;
pub mod space;
pub mod tlb;
pub mod walk;

pub use addr::{PhysAddr, VirtAddr, PAGE_SHIFT, PAGE_SIZE, SENSITIVE_BASE, VA_BITS};
pub use cache::{CacheHierarchy, CacheStats, HitLevel};
pub use digest::Digest;
pub use ept::{EptSet, EptViolation};
pub use phys::PhysMemory;
pub use pkey::{Pkru, PKEY_COUNT};
pub use pte::{PageFlags, Pte};
pub use space::{Access, AddressSpace, Fault, Prot, TransCacheEntry, TranslationStats};
pub use tlb::{Tlb, TlbStats};
pub use walk::PageTable;
