//! Page-table-entry bit layout.
//!
//! The layout follows the Intel SDM for 4-level paging: bit 0 present,
//! bit 1 writable, bit 2 user, bits 51:12 frame address, bits 62:59 the
//! MPK protection key, bit 63 execute-disable. Accessed/dirty are modeled
//! because the walker sets them like hardware does.

use crate::addr::PhysAddr;

/// Permission and status bits of a [`Pte`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFlags {
    /// Entry is valid.
    pub present: bool,
    /// Page may be written.
    pub writable: bool,
    /// Page is reachable from user mode.
    pub user: bool,
    /// Hardware has touched the page (set by the walker on access).
    pub accessed: bool,
    /// Hardware has written the page (set by the walker on store).
    pub dirty: bool,
    /// Instruction fetch is forbidden (XD).
    pub no_execute: bool,
}

impl PageFlags {
    /// Read-write user data page.
    pub fn rw() -> Self {
        Self {
            present: true,
            writable: true,
            user: true,
            accessed: false,
            dirty: false,
            no_execute: true,
        }
    }

    /// Read-only user data page.
    pub fn ro() -> Self {
        Self {
            writable: false,
            ..Self::rw()
        }
    }

    /// Executable (and readable) user code page.
    pub fn rx() -> Self {
        Self {
            writable: false,
            no_execute: false,
            ..Self::rw()
        }
    }
}

const BIT_PRESENT: u64 = 1 << 0;
const BIT_WRITABLE: u64 = 1 << 1;
const BIT_USER: u64 = 1 << 2;
const BIT_ACCESSED: u64 = 1 << 5;
const BIT_DIRTY: u64 = 1 << 6;
const BIT_NX: u64 = 1 << 63;
const ADDR_MASK: u64 = 0x000f_ffff_ffff_f000;
const PKEY_SHIFT: u32 = 59;
const PKEY_MASK: u64 = 0xf << PKEY_SHIFT;

/// A 64-bit page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pte(pub u64);

impl Pte {
    /// Builds a leaf entry mapping `frame` with `flags` and protection
    /// key 0.
    pub fn leaf(frame: PhysAddr, flags: PageFlags) -> Self {
        let mut pte = Pte(frame.0 & ADDR_MASK);
        pte.set_flags(flags);
        pte
    }

    /// Builds a non-leaf entry pointing at the next-level table.
    ///
    /// Intermediate entries are present, writable and user so leaf flags
    /// alone decide permissions (the common OS convention).
    pub fn table(next: PhysAddr) -> Self {
        Pte((next.0 & ADDR_MASK) | BIT_PRESENT | BIT_WRITABLE | BIT_USER)
    }

    /// Whether the entry is present.
    #[inline]
    pub fn present(self) -> bool {
        self.0 & BIT_PRESENT != 0
    }

    /// Physical address this entry points at (frame or next table).
    #[inline]
    pub fn addr(self) -> PhysAddr {
        PhysAddr(self.0 & ADDR_MASK)
    }

    /// Decodes the permission/status flags.
    #[inline]
    pub fn flags(self) -> PageFlags {
        PageFlags {
            present: self.present(),
            writable: self.0 & BIT_WRITABLE != 0,
            user: self.0 & BIT_USER != 0,
            accessed: self.0 & BIT_ACCESSED != 0,
            dirty: self.0 & BIT_DIRTY != 0,
            no_execute: self.0 & BIT_NX != 0,
        }
    }

    /// Overwrites the permission/status flags, preserving address and key.
    pub fn set_flags(&mut self, flags: PageFlags) {
        let mut v = self.0 & (ADDR_MASK | PKEY_MASK);
        if flags.present {
            v |= BIT_PRESENT;
        }
        if flags.writable {
            v |= BIT_WRITABLE;
        }
        if flags.user {
            v |= BIT_USER;
        }
        if flags.accessed {
            v |= BIT_ACCESSED;
        }
        if flags.dirty {
            v |= BIT_DIRTY;
        }
        if flags.no_execute {
            v |= BIT_NX;
        }
        self.0 = v;
    }

    /// The MPK protection key (0..15) of this page.
    #[inline]
    pub fn pkey(self) -> u8 {
        ((self.0 & PKEY_MASK) >> PKEY_SHIFT) as u8
    }

    /// Sets the protection key.
    ///
    /// # Panics
    ///
    /// Panics if `key >= 16`; only the kernel can set keys and it validates
    /// them first, so an out-of-range key is a simulator bug.
    pub fn set_pkey(&mut self, key: u8) {
        assert!(key < 16, "protection key {key} out of range");
        self.0 = (self.0 & !PKEY_MASK) | ((key as u64) << PKEY_SHIFT);
    }

    /// Marks the entry accessed (and dirty when `write`).
    pub fn mark_used(&mut self, write: bool) {
        self.0 |= BIT_ACCESSED;
        if write {
            self.0 |= BIT_DIRTY;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrips_flags_and_address() {
        let frame = PhysAddr(0x1234_5000);
        let pte = Pte::leaf(frame, PageFlags::rw());
        assert!(pte.present());
        assert_eq!(pte.addr(), frame);
        let f = pte.flags();
        assert!(f.writable && f.user && f.no_execute);
        assert!(!f.accessed && !f.dirty);
    }

    #[test]
    fn pkey_occupies_bits_59_to_62() {
        let mut pte = Pte::leaf(PhysAddr(0x1000), PageFlags::rw());
        pte.set_pkey(0xA);
        assert_eq!(pte.pkey(), 0xA);
        assert_eq!((pte.0 >> 59) & 0xf, 0xA);
        // Key does not disturb NX or address.
        assert_eq!(pte.addr(), PhysAddr(0x1000));
        assert!(pte.flags().no_execute);
    }

    #[test]
    fn set_flags_preserves_pkey_and_address() {
        let mut pte = Pte::leaf(PhysAddr(0x7000), PageFlags::rw());
        pte.set_pkey(3);
        pte.set_flags(PageFlags::ro());
        assert_eq!(pte.pkey(), 3);
        assert_eq!(pte.addr(), PhysAddr(0x7000));
        assert!(!pte.flags().writable);
    }

    #[test]
    fn mark_used_sets_accessed_and_dirty() {
        let mut pte = Pte::leaf(PhysAddr(0x2000), PageFlags::rw());
        pte.mark_used(false);
        assert!(pte.flags().accessed);
        assert!(!pte.flags().dirty);
        pte.mark_used(true);
        assert!(pte.flags().dirty);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_pkey_panics() {
        let mut pte = Pte::leaf(PhysAddr(0x2000), PageFlags::rw());
        pte.set_pkey(16);
    }

    #[test]
    fn rx_flags_allow_execution() {
        let pte = Pte::leaf(PhysAddr(0x3000), PageFlags::rx());
        assert!(!pte.flags().no_execute);
        assert!(!pte.flags().writable);
    }
}
