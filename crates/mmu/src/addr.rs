//! Address types and layout constants.
//!
//! The simulated machine uses the x86-64 canonical 48-bit virtual address
//! space. Following the paper's address-based partitioning (§5.4, Figure 2),
//! the *sensitive partition* is everything at or above 64 TB
//! ([`SENSITIVE_BASE`]); the SFI mask and the single MPX upper bound are
//! both derived from that split.

/// Number of implemented virtual-address bits.
pub const VA_BITS: u32 = 48;

/// Page size in bytes (4 KiB pages only; large pages are out of scope).
pub const PAGE_SIZE: u64 = 4096;

/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// First address of the sensitive partition: 64 TB.
///
/// The paper masks pointers with `0x00003fffffffffff` (Figure 2c) and sets
/// `bnd0.upper` to 64 TB, so user-visible addresses below this limit are
/// non-sensitive and everything in `[64 TB, 128 TB)` is sensitive.
pub const SENSITIVE_BASE: u64 = 64 << 40;

/// The SFI mask from the paper's Figure 2c: confines a pointer below 64 TB.
pub const SFI_MASK: u64 = 0x0000_3fff_ffff_ffff;

/// End of the user portion of the address space (128 TB, 47 bits).
pub const USER_TOP: u64 = 128 << 40;

/// A virtual address in the simulated guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

/// A physical address in the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl VirtAddr {
    /// Returns the page-aligned base of the page containing this address.
    #[inline]
    pub fn page_base(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE - 1))
    }

    /// Returns the offset within the page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Returns the virtual page number.
    #[inline]
    pub fn vpn(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Whether the address lies in the low (user, positive) canonical half.
    ///
    /// The simulation only maps user addresses, so "canonical" here means
    /// below 2^47.
    #[inline]
    pub fn is_canonical_user(self) -> bool {
        self.0 < USER_TOP
    }

    /// Whether the address falls in the sensitive partition (>= 64 TB).
    #[inline]
    pub fn is_sensitive_partition(self) -> bool {
        self.0 >= SENSITIVE_BASE
    }

    /// Index into the page-table level `level` (3 = root .. 0 = leaf).
    #[inline]
    pub fn pt_index(self, level: u32) -> u64 {
        (self.0 >> (PAGE_SHIFT + 9 * level)) & 0x1ff
    }
}

impl PhysAddr {
    /// Returns the physical frame number.
    #[inline]
    pub fn pfn(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Returns the offset within the frame.
    #[inline]
    pub fn frame_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }
}

impl core::fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "v{:#x}", self.0)
    }
}

impl core::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "p{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_decomposition() {
        let a = VirtAddr(0x1234_5678);
        assert_eq!(a.page_base().0, 0x1234_5000);
        assert_eq!(a.page_offset(), 0x678);
        assert_eq!(a.vpn(), 0x12345);
    }

    #[test]
    fn pt_indices_cover_48_bits() {
        let a = VirtAddr(0x0000_ffff_ffff_ffff);
        for level in 0..4 {
            assert_eq!(a.pt_index(level), 0x1ff);
        }
        let b = VirtAddr((1 << 39) | (2 << 30) | (3 << 21) | (4 << 12) | 5);
        assert_eq!(b.pt_index(3), 1);
        assert_eq!(b.pt_index(2), 2);
        assert_eq!(b.pt_index(1), 3);
        assert_eq!(b.pt_index(0), 4);
        assert_eq!(b.page_offset(), 5);
    }

    #[test]
    fn sensitive_partition_boundary() {
        assert!(!VirtAddr(SENSITIVE_BASE - 1).is_sensitive_partition());
        assert!(VirtAddr(SENSITIVE_BASE).is_sensitive_partition());
        // The SFI mask confines any address below the boundary.
        assert_eq!(SFI_MASK + 1, SENSITIVE_BASE);
    }

    #[test]
    fn canonical_user_limits() {
        assert!(VirtAddr(0).is_canonical_user());
        assert!(VirtAddr(USER_TOP - 1).is_canonical_user());
        assert!(!VirtAddr(USER_TOP).is_canonical_user());
    }
}
