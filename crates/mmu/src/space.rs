//! The composed address-translation pipeline.
//!
//! [`AddressSpace`] is what the simulated CPU performs every load, store and
//! instruction fetch through. A data access goes: canonical check -> TLB ->
//! page walk -> page permission check -> protection-key check (`pkru`) ->
//! optional EPT translation (when the process runs inside the Dune-like
//! VM). Each stage can raise a typed [`Fault`], which is precisely how the
//! paper's domain-based techniques turn an attacker's stray access into a
//! deterministic crash instead of a silent leak.
//!
//! Three fast paths keep the pipeline cheap without changing its
//! observable behavior: u64 loads/stores that stay within one page skip
//! the generic byte-range loop ([`AddressSpace::read_u64_info`]); a small
//! per-access-kind translation memo lets back-to-back accesses to the
//! same page skip the permission / protection-key / EPT stages after a TLB
//! hit; and per-compiled-op inline translation caches
//! ([`TransCacheEntry`], probed via [`AddressSpace::ic_read_u64`] /
//! [`AddressSpace::ic_write_u64`]) let the threaded execution engine skip
//! [`AddressSpace::check_page`] entirely on a repeat same-page access.
//! The memo is validated by value comparison; the inline caches are
//! validated by a single **mutation generation** counter (plus a `pkru`
//! value compare), so every mapping, `pkru`, view, EPT or TLB event makes
//! all of them fall back to the full pipeline.

use crate::addr::{PhysAddr, VirtAddr, PAGE_SIZE};
use crate::cache::{CacheHierarchy, CacheStats, HitLevel};
use crate::ept::{EptAccess, EptSet, EptViolation};
use crate::phys::PhysMemory;
use crate::pkey::Pkru;
use crate::pte::{PageFlags, Pte};
use crate::tlb::{Tlb, TlbStats};
use crate::walk::PageTable;

/// The kind of memory access being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Fetch,
}

/// Protection for `mprotect`-style calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prot {
    /// No access (`PROT_NONE`).
    None,
    /// Read-only.
    Read,
    /// Read and write.
    ReadWrite,
    /// Read and execute.
    ReadExec,
}

impl Prot {
    fn flags(self) -> PageFlags {
        match self {
            Prot::None => PageFlags {
                present: true,
                writable: false,
                user: false,
                accessed: false,
                dirty: false,
                no_execute: true,
            },
            Prot::Read => PageFlags::ro(),
            Prot::ReadWrite => PageFlags::rw(),
            Prot::ReadExec => PageFlags::rx(),
        }
    }
}

/// A memory-access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Address outside the canonical user range.
    NonCanonical {
        /// The offending address.
        addr: VirtAddr,
    },
    /// No translation for the page (`#PF`, present bit clear).
    NotMapped {
        /// The offending address.
        addr: VirtAddr,
        /// The attempted access.
        access: Access,
    },
    /// Page-permission violation (`#PF`: write to read-only, NX fetch,
    /// or access to a supervisor-only / PROT_NONE page).
    Protection {
        /// The offending address.
        addr: VirtAddr,
        /// The attempted access.
        access: Access,
    },
    /// Protection-key violation (`#PF` with the PK bit set).
    PkeyDenied {
        /// The offending address.
        addr: VirtAddr,
        /// The attempted access.
        access: Access,
        /// The page's protection key.
        key: u8,
    },
    /// EPT violation while running inside the VM.
    Ept(EptViolation),
}

/// Per-access outcome used for cycle accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessInfo {
    /// Whether the translation was served by the TLB.
    pub tlb_hit: bool,
    /// Number of page-walk memory references (0 on a TLB hit).
    pub walk_levels: u32,
    /// Which cache level serviced the data (L1 for fetch checks).
    pub hit_level: HitLevel,
}

/// One remembered translation: the last page checked for a given access
/// kind, so back-to-back accesses to the same page skip the permission /
/// protection-key / EPT stages of [`AddressSpace::check_page`].
///
/// A memo entry never *overrides* the TLB: it is only consulted after a
/// TLB hit, and only when its cached PTE is bit-identical to the one the
/// TLB returned. Validity is established by value comparison rather than
/// invalidation hooks — the entry additionally snapshots the active view,
/// the `pkru` register and the EPT mutation epoch, so any mapping change
/// (which flushes the TLB entry), `wrpkru`, view switch, EPT switch or
/// TLB flush makes the comparison fail and the access falls back to the
/// full check pipeline. Faulting accesses never populate the memo.
#[derive(Debug, Clone, Copy)]
struct TranslationMemo {
    view: u16,
    vpn: u64,
    pte: Pte,
    pkru: Pkru,
    ept_epoch: u64,
    pa_page: u64,
}

/// One inline translation-cache slot: a remembered `(page, frame)`
/// translation owned by a single compiled memory op of the threaded
/// execution engine, validated in one branch against the space's
/// [mutation generation](AddressSpace::generation) plus a `pkru` value
/// compare.
///
/// Validity argument: an entry is filled only after the full
/// [`AddressSpace::check_page`] pipeline accepted an access of this op's
/// kind to this page, and it stamps the generation *after* any TLB insert
/// that access performed. Every avenue that could change what the full
/// pipeline would do — `mprotect`/`pkey_mprotect`, map/unmap, view
/// switches, EPT mutation, TLB flushes *and every TLB insert* (a silent
/// conflict eviction would otherwise turn the next real probe into a
/// miss with different statistics) — bumps the generation, and `pkru`
/// (written directly by `wrpkru`/thread switches) is compared by value.
/// So a generation-valid hit implies the TLB still holds this page's
/// entry with the same PTE: the full pipeline would take its TLB-hit
/// path, pass the same permission checks, and produce the same physical
/// address — the hit path reproduces exactly that (one TLB hit
/// statistic, one cache access, same data), skipping only re-derivation.
///
/// Entries are pure memo state: excluded from `digest_into` and never
/// captured by machine snapshots; `Machine::restore` orphans them by
/// forcing the space generation past every value handed out on either
/// timeline (see [`AddressSpace::restore_from`]).
#[derive(Debug, Clone, Copy)]
pub struct TransCacheEntry {
    /// Space generation at fill; `u64::MAX` is the never-valid sentinel.
    gen: u64,
    /// `pkru` value at fill (compared, not invalidated on write).
    pkru: Pkru,
    /// Virtual page base the entry translates.
    page: u64,
    /// Host-physical page base it translates to.
    pa_page: u64,
}

impl TransCacheEntry {
    /// The never-valid entry every slot starts as.
    pub const INVALID: Self = Self {
        gen: u64::MAX,
        pkru: Pkru(0),
        page: 0,
        pa_page: 0,
    };

    /// Resets the slot to [`Self::INVALID`].
    pub fn invalidate(&mut self) {
        self.gen = u64::MAX;
    }
}

impl Default for TransCacheEntry {
    fn default() -> Self {
        Self::INVALID
    }
}

/// Translation fast-path telemetry (pure counters, excluded from the
/// digest): how many accesses each layer served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationStats {
    /// Translations served end-to-end by an inline cache slot (the
    /// threaded engine's per-compiled-op fast path).
    pub ic_hits: u64,
    /// TLB-hit translations whose permission/EPT stages were skipped by
    /// the two-entry translation memo.
    pub memo_hits: u64,
    /// Total translated accesses (TLB hits + misses; inline-cache hits
    /// record a TLB hit, so they are included).
    pub lookups: u64,
}

/// A full simulated address space.
///
/// # Examples
///
/// ```
/// use memsentry_mmu::{AddressSpace, Fault, PageFlags, Pkru, VirtAddr, PAGE_SIZE};
///
/// let mut space = AddressSpace::new();
/// space.map_region(VirtAddr(0x1000), PAGE_SIZE, PageFlags::rw());
/// space.write_u64(VirtAddr(0x1000), 42).unwrap();
///
/// // Tag the page with protection key 3 and close the domain: the same
/// // access now faults deterministically.
/// space.pkey_mprotect(VirtAddr(0x1000), PAGE_SIZE, 3);
/// space.pkru = Pkru::deny_key(3);
/// assert!(matches!(
///     space.read_u64(VirtAddr(0x1000)),
///     Err(Fault::PkeyDenied { key: 3, .. })
/// ));
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    pm: PhysMemory,
    views: Vec<PageTable>,
    active_view: u16,
    tlb: Tlb,
    /// The MPK `pkru` register (architecturally per-thread; the simulation
    /// is single-threaded).
    pub pkru: Pkru,
    ept: Option<EptSet>,
    cache: CacheHierarchy,
    mprotect_calls: u64,
    /// Last translated page per data-access kind (`[read, write]`).
    memo: [Option<TranslationMemo>; 2],
    /// Bumped on every avenue of EPT mutation (`install_ept`, `ept_mut`);
    /// memo entries from older epochs are ignored.
    ept_epoch: u64,
    /// The mutation generation validating every [`TransCacheEntry`]:
    /// bumped by anything that could change what the full translation
    /// pipeline does — mapping changes, `mprotect`/`pkey_mprotect`, view
    /// switches, EPT mutation, TLB flushes and TLB inserts — and forced
    /// past both timelines' values on [`Self::restore_from`]. `pkru`
    /// deliberately does *not* bump it; inline-cache entries compare the
    /// register by value instead, like the memo (see `cpu::threads`).
    gen: u64,
    /// Accesses served end-to-end by an inline cache slot (telemetry,
    /// excluded from the digest).
    ic_hits: u64,
    /// TLB-hit accesses whose permission stages the memo skipped
    /// (telemetry, excluded from the digest).
    memo_hits: u64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        let mut pm = PhysMemory::new();
        let pt = PageTable::new(&mut pm);
        Self {
            pm,
            views: vec![pt],
            active_view: 0,
            tlb: Tlb::new(),
            pkru: Pkru::allow_all(),
            ept: None,
            cache: CacheHierarchy::new(),
            mprotect_calls: 0,
            memo: [None, None],
            ept_epoch: 0,
            gen: 0,
            ic_hits: 0,
            memo_hits: 0,
        }
    }

    /// The current mutation generation (see [`TransCacheEntry`]).
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Installs an EPT set: the process now runs inside the VM and every
    /// access is additionally translated through the active EPT.
    pub fn install_ept(&mut self, ept: EptSet) {
        self.ept_epoch += 1;
        self.gen += 1;
        self.ept = Some(ept);
    }

    /// Access to the installed EPT set, if any.
    ///
    /// Conservatively treated as an EPT mutation (the caller may switch
    /// the active EPT or change mappings), so the translation memo and
    /// the inline caches stop trusting entries from before this call.
    pub fn ept_mut(&mut self) -> Option<&mut EptSet> {
        self.ept_epoch += 1;
        self.gen += 1;
        self.ept.as_mut()
    }

    /// Whether the space runs under an EPT.
    pub fn has_ept(&self) -> bool {
        self.ept.is_some()
    }

    /// The TLB statistics so far.
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb.stats()
    }

    /// The data-cache statistics so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Flushes the whole TLB (a `cr3` write without PCID).
    pub fn flush_tlb(&mut self) {
        self.gen += 1;
        self.tlb.flush_all();
    }

    /// Number of `mprotect` calls performed.
    pub fn mprotect_calls(&self) -> u64 {
        self.mprotect_calls
    }

    /// Caps the physical frame allocator at `limit` frames total; `None`
    /// removes the cap. Once exhausted, [`Self::try_map_region`] fails
    /// (typed out-of-memory) while the trusted setup-time paths panic.
    pub fn set_frame_limit(&mut self, limit: Option<u64>) {
        self.pm.set_frame_limit(limit);
    }

    fn pt(&self) -> PageTable {
        self.views[self.active_view as usize]
    }

    // --- address-space views (PCID / page-table switching) ------------------

    /// The active view (its index doubles as the PCID).
    pub fn active_view(&self) -> u16 {
        self.active_view
    }

    /// Number of views.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// Creates a new view as a *copy* of the active one's leaf mappings
    /// and returns its id. Later `map`/`unmap` calls affect only the
    /// then-active view, so views can diverge — the mechanism behind the
    /// kernel-assisted page-table-switching technique.
    pub fn add_view(&mut self) -> u16 {
        self.gen += 1;
        let new_pt = PageTable::new(&mut self.pm);
        for (va, pte) in self.pt().mappings(&mut self.pm) {
            let flags = pte.flags();
            new_pt.map(&mut self.pm, va, pte.addr(), flags);
            if pte.pkey() != 0 {
                new_pt.set_pkey(&mut self.pm, va, pte.pkey());
            }
        }
        self.views.push(new_pt);
        (self.views.len() - 1) as u16
    }

    /// Switches the active view (a `mov cr3` with PCID: the TLB keeps its
    /// tagged entries). Returns `false` for an unknown view.
    pub fn switch_view(&mut self, view: u16) -> bool {
        if (view as usize) < self.views.len() {
            self.gen += 1;
            self.active_view = view;
            true
        } else {
            false
        }
    }

    // --- kernel-side mapping API -------------------------------------------

    /// Maps `len` bytes starting at page-aligned `start` as anonymous
    /// memory with `flags`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not page aligned; mapping is a kernel-side
    /// (trusted) operation in the simulation.
    pub fn map_region(&mut self, start: VirtAddr, len: u64, flags: PageFlags) {
        assert_eq!(start.page_offset(), 0, "map_region requires page alignment");
        self.gen += 1;
        let pages = len.div_ceil(PAGE_SIZE);
        for i in 0..pages {
            self.pt()
                .map_anon(&mut self.pm, VirtAddr(start.0 + i * PAGE_SIZE), flags);
        }
    }

    /// Fallible variant of [`Self::map_region`]: returns `false` when the
    /// physical frame allocator is exhausted (the pages mapped before the
    /// exhaustion point stay mapped). The heap uses this so running out
    /// of simulated RAM surfaces as a typed allocation failure rather
    /// than a panic.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not page aligned, like [`Self::map_region`].
    pub fn try_map_region(&mut self, start: VirtAddr, len: u64, flags: PageFlags) -> bool {
        assert_eq!(start.page_offset(), 0, "map_region requires page alignment");
        self.gen += 1;
        let pages = len.div_ceil(PAGE_SIZE);
        for i in 0..pages {
            if self
                .pt()
                .try_map_anon(&mut self.pm, VirtAddr(start.0 + i * PAGE_SIZE), flags)
                .is_none()
            {
                return false;
            }
        }
        true
    }

    /// Unmaps the pages covering `[start, start+len)` and flushes the TLB.
    pub fn unmap_region(&mut self, start: VirtAddr, len: u64) {
        self.gen += 1;
        let pages = len.div_ceil(PAGE_SIZE);
        for i in 0..pages {
            let va = VirtAddr(start.page_base().0 + i * PAGE_SIZE);
            self.pt().unmap(&mut self.pm, va);
            self.tlb.flush_page(va.vpn());
        }
    }

    /// `mprotect(2)`: changes page permissions over a range and flushes the
    /// affected TLB entries. Returns `false` if any page was unmapped.
    pub fn mprotect(&mut self, start: VirtAddr, len: u64, prot: Prot) -> bool {
        self.mprotect_calls += 1;
        self.gen += 1;
        let pages = len.div_ceil(PAGE_SIZE).max(1);
        let mut ok = true;
        for i in 0..pages {
            let va = VirtAddr(start.page_base().0 + i * PAGE_SIZE);
            ok &= self.pt().protect(&mut self.pm, va, prot.flags());
            self.tlb.flush_page(va.vpn());
        }
        ok
    }

    /// `pkey_mprotect(2)`: assigns protection key `key` to a range.
    pub fn pkey_mprotect(&mut self, start: VirtAddr, len: u64, key: u8) -> bool {
        self.gen += 1;
        let pages = len.div_ceil(PAGE_SIZE).max(1);
        let mut ok = true;
        for i in 0..pages {
            let va = VirtAddr(start.page_base().0 + i * PAGE_SIZE);
            ok &= self.pt().set_pkey(&mut self.pm, va, key);
            self.tlb.flush_page(va.vpn());
        }
        ok
    }

    /// Guest-physical frame number backing the page of `va`, if mapped.
    ///
    /// The Dune hypervisor uses this to translate the guest's "mark this
    /// mapping secret" hypercall argument into an EPT frame.
    pub fn gpfn_of(&mut self, va: VirtAddr) -> Option<u64> {
        let pt = self.pt();
        pt.translate(&mut self.pm, va.page_base())
            .map(|pa| pa.pfn())
    }

    /// Kernel-side probe of the leaf page flags for `va` in the active
    /// view (no TLB, memo or cache side effects — the walk reads only
    /// simulated physical memory, which carries no statistics). The
    /// signal-delivery engine uses this to record a region's protection
    /// before scrubbing it to `PROT_NONE` so `sigreturn` can restore it.
    pub fn page_flags(&mut self, va: VirtAddr) -> Option<PageFlags> {
        let pt = self.pt();
        pt.walk(&mut self.pm, va).map(|res| res.pte.flags())
    }

    /// Kernel-side (unchecked) write, used to initialize memory contents.
    pub fn poke(&mut self, va: VirtAddr, bytes: &[u8]) -> bool {
        for (i, &b) in bytes.iter().enumerate() {
            match self.pt().translate(&mut self.pm, VirtAddr(va.0 + i as u64)) {
                Some(pa) => self.pm.write(pa, &[b]),
                None => return false,
            }
        }
        true
    }

    /// Kernel-side (unchecked) read.
    pub fn peek(&mut self, va: VirtAddr, buf: &mut [u8]) -> bool {
        for (i, b) in buf.iter_mut().enumerate() {
            match self.pt().translate(&mut self.pm, VirtAddr(va.0 + i as u64)) {
                Some(pa) => {
                    let mut tmp = [0u8; 1];
                    self.pm.read(pa, &mut tmp);
                    *b = tmp[0];
                }
                None => return false,
            }
        }
        true
    }

    // --- user-side checked access ------------------------------------------

    /// Memo slot for an access kind; fetches are rare enough not to memo.
    fn memo_slot(access: Access) -> Option<usize> {
        match access {
            Access::Read => Some(0),
            Access::Write => Some(1),
            Access::Fetch => None,
        }
    }

    #[inline(always)]
    fn check_page(
        &mut self,
        va: VirtAddr,
        access: Access,
    ) -> Result<(PhysAddr, AccessInfo), Fault> {
        if !va.is_canonical_user() {
            return Err(Fault::NonCanonical { addr: va });
        }
        let vpn = va.vpn();
        let (pte, info) = match self.tlb.lookup(self.active_view, vpn) {
            Some(pte) => (
                pte,
                AccessInfo {
                    tlb_hit: true,
                    walk_levels: 0,
                    hit_level: HitLevel::L1,
                },
            ),
            None => {
                let pt = self.pt();
                let res = pt
                    .walk(&mut self.pm, va)
                    .ok_or(Fault::NotMapped { addr: va, access })?;
                pt.update_leaf(&mut self.pm, va, |p| p.mark_used(access == Access::Write));
                // A TLB insert can silently evict a conflicting entry
                // (direct-mapped, no eviction statistic), turning some
                // other page's next real probe into a miss — so inserts
                // invalidate the inline caches like any other mutation.
                self.tlb.insert(self.active_view, vpn, res.pte);
                self.gen += 1;
                (
                    res.pte,
                    AccessInfo {
                        tlb_hit: false,
                        walk_levels: res.levels_touched,
                        hit_level: HitLevel::L1,
                    },
                )
            }
        };
        // Fast path: the memo remembers the last page that passed the full
        // check for this access kind. It only ever confirms what the TLB
        // just served (same PTE bits) under the same protection state
        // (view, pkru, EPT epoch), so the outcome — including the faulting
        // behavior — is identical to the checks below.
        if info.tlb_hit {
            if let Some(slot) = Self::memo_slot(access) {
                if let Some(m) = self.memo[slot] {
                    if m.vpn == vpn
                        && m.view == self.active_view
                        && m.pte == pte
                        && m.pkru == self.pkru
                        && m.ept_epoch == self.ept_epoch
                    {
                        self.memo_hits += 1;
                        return Ok((PhysAddr(m.pa_page + va.page_offset()), info));
                    }
                }
            }
        }
        let flags = pte.flags();
        let denied = match access {
            Access::Read => !flags.user,
            Access::Write => !flags.user || !flags.writable,
            Access::Fetch => !flags.user || flags.no_execute,
        };
        if denied {
            return Err(Fault::Protection { addr: va, access });
        }
        // Protection keys gate data accesses only (SDM: not instruction
        // fetches).
        if access != Access::Fetch {
            let key = pte.pkey();
            if !self.pkru.permits(key, access == Access::Write) {
                return Err(Fault::PkeyDenied {
                    addr: va,
                    access,
                    key,
                });
            }
        }
        let gpa = PhysAddr(pte.addr().0 + va.page_offset());
        let hpa = match &mut self.ept {
            Some(ept) => {
                let ea = match access {
                    Access::Read => EptAccess::Read,
                    Access::Write => EptAccess::Write,
                    Access::Fetch => EptAccess::Exec,
                };
                let hpfn = ept.translate(gpa.pfn(), ea).map_err(Fault::Ept)?;
                PhysAddr((hpfn << 12) + gpa.frame_offset())
            }
            None => gpa,
        };
        if let Some(slot) = Self::memo_slot(access) {
            self.memo[slot] = Some(TranslationMemo {
                view: self.active_view,
                vpn,
                pte,
                pkru: self.pkru,
                ept_epoch: self.ept_epoch,
                pa_page: hpa.0 & !(PAGE_SIZE - 1),
            });
        }
        Ok((hpa, info))
    }

    /// Checked user read of `buf.len()` bytes at `va`.
    pub fn read(&mut self, va: VirtAddr, buf: &mut [u8]) -> Result<AccessInfo, Fault> {
        self.access(va, buf.len() as u64, Access::Read, |pm, pa, range| {
            pm.read(pa, &mut buf[range]);
        })
    }

    /// Checked user write of `bytes` at `va`.
    pub fn write(&mut self, va: VirtAddr, bytes: &[u8]) -> Result<AccessInfo, Fault> {
        self.access(va, bytes.len() as u64, Access::Write, |pm, pa, range| {
            pm.write(pa, &bytes[range]);
        })
    }

    /// Checked instruction-fetch permission test for the page at `va`.
    pub fn check_fetch(&mut self, va: VirtAddr) -> Result<AccessInfo, Fault> {
        self.check_page(va, Access::Fetch).map(|(_, info)| info)
    }

    fn access(
        &mut self,
        va: VirtAddr,
        len: u64,
        kind: Access,
        mut touch: impl FnMut(&mut PhysMemory, PhysAddr, std::ops::Range<usize>),
    ) -> Result<AccessInfo, Fault> {
        // Even a zero-length access is a permission probe of its page:
        // translation and every protection stage run exactly as for a
        // one-byte access — only the data transfer (and with it the data
        // cache) is skipped, the same convention `check_fetch` uses.
        let (pa, mut first) = self.check_page(va, kind)?;
        if len == 0 {
            return Ok(first);
        }
        first.hit_level = self.cache.access(pa.0);
        let in_page = (PAGE_SIZE - va.page_offset()).min(len);
        touch(&mut self.pm, pa, 0..in_page as usize);
        let mut done = in_page;
        while done < len {
            let cur = VirtAddr(va.0 + done);
            let in_page = (PAGE_SIZE - cur.page_offset()).min(len - done);
            let (pa, _) = self.check_page(cur, kind)?;
            self.cache.access(pa.0);
            touch(&mut self.pm, pa, done as usize..(done + in_page) as usize);
            done += in_page;
        }
        Ok(first)
    }

    /// Checked read of a little-endian u64.
    #[inline]
    pub fn read_u64(&mut self, va: VirtAddr) -> Result<u64, Fault> {
        self.read_u64_info(va).map(|(v, _)| v)
    }

    /// Checked read of a little-endian u64, returning the [`AccessInfo`]
    /// used for cycle accounting.
    ///
    /// This is the simulator's load fast path: a u64 that does not cross
    /// a page boundary takes one page check, one cache access and one
    /// frame copy — bypassing the generic byte-range loop of
    /// [`AddressSpace::read`] with identical statistics and fault
    /// behavior (a single-page access runs exactly one iteration of that
    /// loop). Page-crossing accesses fall back to the generic path.
    #[inline(always)]
    pub fn read_u64_info(&mut self, va: VirtAddr) -> Result<(u64, AccessInfo), Fault> {
        if va.page_offset() <= PAGE_SIZE - 8 {
            let (pa, mut info) = self.check_page(va, Access::Read)?;
            info.hit_level = self.cache.access(pa.0);
            Ok((self.pm.read_u64(pa), info))
        } else {
            let mut buf = [0u8; 8];
            let info = self.read(va, &mut buf)?;
            Ok((u64::from_le_bytes(buf), info))
        }
    }

    /// [`Self::read_u64_info`] through a compiled op's inline
    /// translation-cache slot.
    ///
    /// On a generation-valid same-page hit this skips
    /// [`Self::check_page`] entirely — one TLB-hit statistic (the full
    /// pipeline would hit, see [`TransCacheEntry`]), the real cache
    /// access, and the frame read — with bit-identical observable state.
    /// On a miss it takes the full path and refills the slot from the
    /// translation memo the full path just validated.
    #[inline(always)]
    pub fn ic_read_u64(
        &mut self,
        va: VirtAddr,
        e: &mut TransCacheEntry,
    ) -> Result<(u64, AccessInfo), Fault> {
        // One subtract-compare covers "same page" and "u64 fits".
        if e.gen == self.gen && va.0.wrapping_sub(e.page) <= PAGE_SIZE - 8 && e.pkru == self.pkru {
            self.ic_hits += 1;
            self.tlb.note_hit();
            let pa = PhysAddr(e.pa_page + (va.0 - e.page));
            let hit_level = self.cache.access(pa.0);
            return Ok((
                self.pm.read_u64(pa),
                AccessInfo {
                    tlb_hit: true,
                    walk_levels: 0,
                    hit_level,
                },
            ));
        }
        let r = self.read_u64_info(va)?;
        self.ic_refill(va, 0, e);
        Ok(r)
    }

    /// [`Self::write_u64`] through a compiled op's inline
    /// translation-cache slot; see [`Self::ic_read_u64`].
    #[inline(always)]
    pub fn ic_write_u64(
        &mut self,
        va: VirtAddr,
        value: u64,
        e: &mut TransCacheEntry,
    ) -> Result<AccessInfo, Fault> {
        if e.gen == self.gen && va.0.wrapping_sub(e.page) <= PAGE_SIZE - 8 && e.pkru == self.pkru {
            self.ic_hits += 1;
            self.tlb.note_hit();
            let pa = PhysAddr(e.pa_page + (va.0 - e.page));
            let hit_level = self.cache.access(pa.0);
            self.pm.write_u64(pa, value);
            return Ok(AccessInfo {
                tlb_hit: true,
                walk_levels: 0,
                hit_level,
            });
        }
        let r = self.write_u64(va, value)?;
        self.ic_refill(va, 1, e);
        Ok(r)
    }

    /// Refills an inline-cache slot after a successful full-path access,
    /// from the translation memo that access just validated or filled.
    /// The generation is stamped *after* any TLB insert the access
    /// performed, so a later generation-equal probe implies the entry is
    /// still TLB-resident. Page-crossing accesses leave the memo on their
    /// last page, so the `vpn` compare skips them.
    #[inline]
    fn ic_refill(&mut self, va: VirtAddr, slot: usize, e: &mut TransCacheEntry) {
        if va.page_offset() <= PAGE_SIZE - 8 {
            if let Some(m) = self.memo[slot] {
                if m.vpn == va.vpn()
                    && m.view == self.active_view
                    && m.pkru == self.pkru
                    && m.ept_epoch == self.ept_epoch
                {
                    *e = TransCacheEntry {
                        gen: self.gen,
                        pkru: self.pkru,
                        page: va.page_base().0,
                        pa_page: m.pa_page,
                    };
                }
            }
        }
    }

    /// The translation fast-path telemetry so far (pure counters; see
    /// [`TranslationStats`]).
    pub fn translation_stats(&self) -> TranslationStats {
        let tlb = self.tlb.stats();
        TranslationStats {
            ic_hits: self.ic_hits,
            memo_hits: self.memo_hits,
            lookups: tlb.hits + tlb.misses,
        }
    }

    /// Feeds the space's semantic state into `d`: physical memory, the
    /// cache hierarchy, the TLB, every view's root frame (page-table
    /// *contents* live in physical frames and are covered by the memory
    /// digest), the active view, PKRU, the EPTP list, and the `mprotect`
    /// counter. The translation memo and its epoch, the mutation
    /// generation, and the fast-path hit counters are excluded — all of
    /// them are pure cache/telemetry state validated against (or derived
    /// from) the fields above, so two spaces differing only in that
    /// state are observationally identical.
    pub fn digest_into(&self, d: &mut crate::digest::Digest) {
        self.pm.digest_into(d);
        self.cache.digest_into(d);
        self.tlb.digest_into(d);
        d.write_u64(self.views.len() as u64);
        for view in &self.views {
            d.write_u64(view.root().0);
        }
        d.write_u64(self.active_view as u64);
        d.write_u64(self.pkru.0 as u64);
        match &self.ept {
            Some(ept) => {
                d.write_u8(1);
                ept.digest_into(d);
            }
            None => d.write_u8(0),
        }
        d.write_u64(self.mprotect_calls);
    }

    // --- incremental snapshot/restore support -------------------------------

    /// Starts (or restarts) dirty tracking on the physical memory and the
    /// cache hierarchy so later [`Self::restore_from`] calls can rewind
    /// this space incrementally. Call at the moment `self` is identical
    /// to the space it will later be rewound to (e.g. right after a full
    /// restore from a snapshot).
    pub fn start_restore_tracking(&mut self) {
        self.pm.start_tracking();
        self.cache.start_tracking();
    }

    /// Rewinds `self` to the state of `src` incrementally: only the
    /// physical frames and cache sets dirtied since tracking (re)started
    /// are copied back, while the small fixed-size components (TLB,
    /// views, `pkru`, EPTs, translation memo, counters) are copied
    /// wholesale. Semantically identical to `*self = src.clone()` but
    /// allocation-free on the hot path — a full clone reallocates every
    /// per-set cache vector (~8.8k allocations), which dominated the
    /// fault-sweep wall-clock before delta restores.
    ///
    /// Correctness precondition: `self` was identical to `src` when
    /// [`Self::start_restore_tracking`] was last called and has only
    /// been mutated through `AddressSpace` methods since (all frame
    /// mutations funnel through the tracked `PhysMemory` accessor and
    /// all cache mutations through the tracked `CacheHierarchy::access`).
    pub fn restore_from(&mut self, src: &AddressSpace) {
        self.pm.restore_from(&src.pm);
        self.cache.restore_from(&src.cache);
        self.tlb.restore_from(&src.tlb);
        self.views.clone_from(&src.views);
        self.active_view = src.active_view;
        self.pkru = src.pkru;
        self.ept.clone_from(&src.ept);
        self.mprotect_calls = src.mprotect_calls;
        self.memo = src.memo;
        self.ept_epoch = src.ept_epoch;
        // Rewinding is a translation mutation like any other — and the
        // generation must also move *past* both timelines' values, never
        // backwards, or an inline-cache entry filled on the abandoned
        // timeline could compare equal to a later re-reached count.
        self.gen = self.gen.max(src.gen) + 1;
        self.ic_hits = src.ic_hits;
        self.memo_hits = src.memo_hits;
    }

    /// Forces the mutation generation strictly past `floor` (and past its
    /// own current value). `Machine::restore` uses this after replacing
    /// the space with a snapshot clone, so inline-cache entries filled on
    /// the abandoned timeline can never compare valid again.
    pub fn bump_generation_past(&mut self, floor: u64) {
        self.gen = self.gen.max(floor) + 1;
    }

    /// Checked write of a little-endian u64.
    ///
    /// Single-page writes take the same fast path as
    /// [`AddressSpace::read_u64_info`]; page-crossing writes fall back to
    /// the generic [`AddressSpace::write`] loop.
    #[inline(always)]
    pub fn write_u64(&mut self, va: VirtAddr, value: u64) -> Result<AccessInfo, Fault> {
        if va.page_offset() <= PAGE_SIZE - 8 {
            let (pa, mut info) = self.check_page(va, Access::Write)?;
            info.hit_level = self.cache.access(pa.0);
            self.pm.write_u64(pa, value);
            Ok(info)
        } else {
            self.write(va, &value.to_le_bytes())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::SENSITIVE_BASE;

    fn space_with_page(va: u64, flags: PageFlags) -> AddressSpace {
        let mut s = AddressSpace::new();
        s.map_region(VirtAddr(va), PAGE_SIZE, flags);
        s
    }

    #[test]
    fn read_write_roundtrip() {
        let mut s = space_with_page(0x1000, PageFlags::rw());
        s.write(VirtAddr(0x1100), b"hello").unwrap();
        let mut buf = [0u8; 5];
        s.read(VirtAddr(0x1100), &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn write_to_readonly_faults() {
        let mut s = space_with_page(0x1000, PageFlags::ro());
        let err = s.write(VirtAddr(0x1000), b"x").unwrap_err();
        assert!(matches!(
            err,
            Fault::Protection {
                access: Access::Write,
                ..
            }
        ));
        // Reads still work.
        let mut b = [0u8; 1];
        s.read(VirtAddr(0x1000), &mut b).unwrap();
    }

    #[test]
    fn unmapped_access_faults() {
        let mut s = AddressSpace::new();
        let err = s.read_u64(VirtAddr(0x5000)).unwrap_err();
        assert!(matches!(err, Fault::NotMapped { .. }));
    }

    #[test]
    fn non_canonical_access_faults() {
        let mut s = AddressSpace::new();
        let err = s.read_u64(VirtAddr(1 << 60)).unwrap_err();
        assert!(matches!(err, Fault::NonCanonical { .. }));
    }

    #[test]
    fn fetch_from_nx_page_faults_but_data_read_works() {
        let mut s = space_with_page(0x2000, PageFlags::rw());
        assert!(matches!(
            s.check_fetch(VirtAddr(0x2000)),
            Err(Fault::Protection {
                access: Access::Fetch,
                ..
            })
        ));
        let mut s = space_with_page(0x2000, PageFlags::rx());
        s.check_fetch(VirtAddr(0x2000)).unwrap();
    }

    #[test]
    fn pkey_denies_data_access_but_not_fetch() {
        let mut s = AddressSpace::new();
        s.map_region(VirtAddr(0x3000), PAGE_SIZE, PageFlags::rx());
        s.pkey_mprotect(VirtAddr(0x3000), PAGE_SIZE, 4);
        s.pkru = Pkru::deny_key(4);
        let err = s.read_u64(VirtAddr(0x3000)).unwrap_err();
        assert!(matches!(err, Fault::PkeyDenied { key: 4, .. }));
        // Instruction fetches are not subject to pkeys.
        s.check_fetch(VirtAddr(0x3000)).unwrap();
    }

    #[test]
    fn pkey_write_disable_permits_reads() {
        let mut s = space_with_page(0x3000, PageFlags::rw());
        s.pkey_mprotect(VirtAddr(0x3000), PAGE_SIZE, 2);
        s.pkru.set_write_disable(2, true);
        s.read_u64(VirtAddr(0x3000)).unwrap();
        let err = s.write_u64(VirtAddr(0x3000), 1).unwrap_err();
        assert!(matches!(
            err,
            Fault::PkeyDenied {
                key: 2,
                access: Access::Write,
                ..
            }
        ));
    }

    #[test]
    fn wrpkru_toggle_reopens_access() {
        let mut s = space_with_page(0x3000, PageFlags::rw());
        s.pkey_mprotect(VirtAddr(0x3000), PAGE_SIZE, 1);
        s.pkru = Pkru::deny_key(1);
        assert!(s.read_u64(VirtAddr(0x3000)).is_err());
        s.pkru.set_access_disable(1, false);
        s.pkru.set_write_disable(1, false);
        s.write_u64(VirtAddr(0x3000), 0xdead).unwrap();
        assert_eq!(s.read_u64(VirtAddr(0x3000)).unwrap(), 0xdead);
    }

    #[test]
    fn mprotect_none_then_restore() {
        let mut s = space_with_page(0x4000, PageFlags::rw());
        assert!(s.mprotect(VirtAddr(0x4000), PAGE_SIZE, Prot::None));
        assert!(matches!(
            s.read_u64(VirtAddr(0x4000)),
            Err(Fault::Protection { .. })
        ));
        assert!(s.mprotect(VirtAddr(0x4000), PAGE_SIZE, Prot::ReadWrite));
        s.write_u64(VirtAddr(0x4000), 7).unwrap();
        assert_eq!(s.mprotect_calls(), 2);
    }

    #[test]
    fn mprotect_flushes_stale_tlb_entry() {
        let mut s = space_with_page(0x4000, PageFlags::rw());
        // Prime the TLB.
        s.write_u64(VirtAddr(0x4000), 1).unwrap();
        s.mprotect(VirtAddr(0x4000), PAGE_SIZE, Prot::Read);
        // The cached writable PTE must not win.
        assert!(s.write_u64(VirtAddr(0x4000), 2).is_err());
    }

    #[test]
    fn mprotect_and_unmap_count_page_flushes() {
        // The per-page invalidation cost of the mprotect baseline and the
        // PTS extension is observable: one page flush per page touched.
        let mut s = AddressSpace::new();
        s.map_region(VirtAddr(0x4000), 2 * PAGE_SIZE, PageFlags::rw());
        assert_eq!(s.tlb_stats().page_flushes, 0);
        s.mprotect(VirtAddr(0x4000), 2 * PAGE_SIZE, Prot::Read);
        assert_eq!(s.tlb_stats().page_flushes, 2);
        s.unmap_region(VirtAddr(0x4000), PAGE_SIZE);
        assert_eq!(s.tlb_stats().page_flushes, 3);
    }

    #[test]
    fn cross_page_write_spans_mappings() {
        let mut s = AddressSpace::new();
        s.map_region(VirtAddr(0x6000), 2 * PAGE_SIZE, PageFlags::rw());
        let data: Vec<u8> = (0..16).collect();
        s.write(VirtAddr(0x6000 + PAGE_SIZE - 8), &data).unwrap();
        let mut buf = [0u8; 16];
        s.read(VirtAddr(0x6000 + PAGE_SIZE - 8), &mut buf).unwrap();
        assert_eq!(&buf[..], &data[..]);
    }

    #[test]
    fn cross_page_write_faults_midway_if_second_page_missing() {
        let mut s = space_with_page(0x6000, PageFlags::rw());
        let err = s
            .write(VirtAddr(0x6000 + PAGE_SIZE - 4), &[0u8; 8])
            .unwrap_err();
        assert!(matches!(err, Fault::NotMapped { .. }));
    }

    #[test]
    fn tlb_hit_reported_on_second_access() {
        let mut s = space_with_page(0x7000, PageFlags::rw());
        s.read_u64(VirtAddr(0x7000)).unwrap();
        let info = s.write_u64(VirtAddr(0x7008), 1).unwrap();
        assert!(info.tlb_hit);
        assert!(s.tlb_stats().hits >= 1);
        assert!(s.tlb_stats().misses >= 1);
    }

    #[test]
    fn ept_secret_page_faults_in_default_domain() {
        let mut s = space_with_page(SENSITIVE_BASE, PageFlags::rw());
        // Find the guest-physical frame of the page to mark secret.
        s.write_u64(VirtAddr(SENSITIVE_BASE), 0x5afe).unwrap();
        let mut ept = EptSet::new(2, true);
        // Mark every currently mapped gpfn secret to EPT 1. The data page
        // is the last allocated frame; mark a generous range.
        for gpfn in 0..64 {
            ept.mark_secret(gpfn, 1);
        }
        s.install_ept(ept);
        let err = s.read_u64(VirtAddr(SENSITIVE_BASE)).unwrap_err();
        assert!(matches!(err, Fault::Ept(_)));
        s.ept_mut().unwrap().vmfunc_switch(1);
        assert_eq!(s.read_u64(VirtAddr(SENSITIVE_BASE)).unwrap(), 0x5afe);
    }

    #[test]
    fn views_diverge_after_fork() {
        let mut s = AddressSpace::new();
        s.map_region(VirtAddr(0x5000), PAGE_SIZE, PageFlags::rw());
        s.poke(VirtAddr(0x5000), &7u64.to_le_bytes());
        let secure = s.add_view();
        // Unmap from view 0; view `secure` keeps the page (same frame).
        s.unmap_region(VirtAddr(0x5000), PAGE_SIZE);
        assert!(matches!(
            s.read_u64(VirtAddr(0x5000)),
            Err(Fault::NotMapped { .. })
        ));
        assert!(s.switch_view(secure));
        assert_eq!(s.read_u64(VirtAddr(0x5000)).unwrap(), 7);
    }

    #[test]
    fn switch_to_unknown_view_fails() {
        let mut s = AddressSpace::new();
        assert!(!s.switch_view(3));
        assert_eq!(s.active_view(), 0);
    }

    #[test]
    fn pcid_prevents_stale_tlb_entries_across_views() {
        // Access the page from the secure view (priming the TLB), switch
        // back, and verify the cached translation does NOT leak into the
        // default view.
        let mut s = AddressSpace::new();
        s.map_region(VirtAddr(0x6000), PAGE_SIZE, PageFlags::rw());
        let secure = s.add_view();
        s.unmap_region(VirtAddr(0x6000), PAGE_SIZE);
        s.switch_view(secure);
        s.write_u64(VirtAddr(0x6000), 1).unwrap(); // TLB now holds (secure, vpn)
        s.switch_view(0);
        assert!(
            matches!(s.read_u64(VirtAddr(0x6000)), Err(Fault::NotMapped { .. })),
            "PCID tag must prevent the secure view's TLB entry from serving view 0"
        );
        // And no flush happened: switching back still hits the TLB.
        s.switch_view(secure);
        let before = s.tlb_stats().hits;
        s.read_u64(VirtAddr(0x6000)).unwrap();
        assert!(s.tlb_stats().hits > before);
    }

    #[test]
    fn view_clone_preserves_pkeys_and_flags() {
        let mut s = AddressSpace::new();
        s.map_region(VirtAddr(0x7000), PAGE_SIZE, PageFlags::ro());
        s.pkey_mprotect(VirtAddr(0x7000), PAGE_SIZE, 3);
        let v = s.add_view();
        s.switch_view(v);
        assert!(matches!(
            s.write_u64(VirtAddr(0x7000), 1),
            Err(Fault::Protection { .. })
        ));
        s.pkru = Pkru::deny_key(3);
        assert!(matches!(
            s.read_u64(VirtAddr(0x7000)),
            Err(Fault::PkeyDenied { key: 3, .. })
        ));
    }

    #[test]
    fn memo_never_outlives_a_pkru_change() {
        // Prime the read memo, then revoke the key: the memoized
        // translation must not serve the now-forbidden access.
        let mut s = space_with_page(0x9000, PageFlags::rw());
        s.pkey_mprotect(VirtAddr(0x9000), PAGE_SIZE, 5);
        s.read_u64(VirtAddr(0x9000)).unwrap();
        s.read_u64(VirtAddr(0x9008)).unwrap(); // memo hit
        s.pkru = Pkru::deny_key(5);
        assert!(matches!(
            s.read_u64(VirtAddr(0x9010)),
            Err(Fault::PkeyDenied { key: 5, .. })
        ));
        // Reopening the key restores the access (and re-primes the memo).
        s.pkru = Pkru::allow_all();
        s.read_u64(VirtAddr(0x9018)).unwrap();
    }

    #[test]
    fn memo_never_outlives_an_ept_switch() {
        // After a successful access in the secret domain, switching the
        // EPT back must fault again: the memoized host translation from
        // the secret EPT is stale.
        let mut s = space_with_page(SENSITIVE_BASE, PageFlags::rw());
        s.write_u64(VirtAddr(SENSITIVE_BASE), 0x5afe).unwrap();
        let mut ept = EptSet::new(2, true);
        for gpfn in 0..64 {
            ept.mark_secret(gpfn, 1);
        }
        s.install_ept(ept);
        s.ept_mut().unwrap().vmfunc_switch(1);
        assert_eq!(s.read_u64(VirtAddr(SENSITIVE_BASE)).unwrap(), 0x5afe);
        assert_eq!(s.read_u64(VirtAddr(SENSITIVE_BASE)).unwrap(), 0x5afe);
        s.ept_mut().unwrap().vmfunc_switch(0);
        assert!(matches!(
            s.read_u64(VirtAddr(SENSITIVE_BASE)),
            Err(Fault::Ept(_))
        ));
    }

    #[test]
    fn memo_never_outlives_a_view_switch() {
        // The same vpn maps to different frames in two views; repeated
        // accesses across switches must read each view's own frame.
        let mut s = AddressSpace::new();
        s.map_region(VirtAddr(0xa000), PAGE_SIZE, PageFlags::rw());
        let secure = s.add_view();
        s.write_u64(VirtAddr(0xa000), 1).unwrap();
        s.write_u64(VirtAddr(0xa008), 1).unwrap(); // memo hit in view 0
        s.switch_view(secure);
        // Same frame is shared after add_view; remap view `secure` to a
        // fresh frame so the views diverge.
        s.unmap_region(VirtAddr(0xa000), PAGE_SIZE);
        s.map_region(VirtAddr(0xa000), PAGE_SIZE, PageFlags::rw());
        s.write_u64(VirtAddr(0xa000), 2).unwrap();
        assert_eq!(s.read_u64(VirtAddr(0xa000)).unwrap(), 2);
        s.switch_view(0);
        assert_eq!(s.read_u64(VirtAddr(0xa000)).unwrap(), 1);
    }

    #[test]
    fn u64_fast_path_matches_generic_reads() {
        // The u64 fast path and the generic byte loop must agree on both
        // value and reported access info, including at the page-crossing
        // boundary where the fast path falls back.
        let mut s = AddressSpace::new();
        s.map_region(VirtAddr(0xb000), 2 * PAGE_SIZE, PageFlags::rw());
        for off in [0u64, 8, 4088, 4089, 4096] {
            let va = VirtAddr(0xb000 + off);
            s.write_u64(va, 0x1122_3344_5566_7700 + off).unwrap();
            let (v, info) = s.read_u64_info(va).unwrap();
            assert_eq!(v, 0x1122_3344_5566_7700 + off, "offset {off}");
            let mut buf = [0u8; 8];
            let ginfo = s.read(va, &mut buf).unwrap();
            assert_eq!(u64::from_le_bytes(buf), v, "offset {off}");
            assert_eq!(info, ginfo, "offset {off}");
        }
    }

    #[test]
    fn incremental_restore_matches_a_full_clone() {
        let mut s = AddressSpace::new();
        s.map_region(VirtAddr(0x1000), 4 * PAGE_SIZE, PageFlags::rw());
        s.pkey_mprotect(VirtAddr(0x1000), PAGE_SIZE, 2);
        for i in 0..4u64 {
            s.write_u64(VirtAddr(0x1000 + i * 8), i).unwrap();
        }
        let src = s.clone();
        s.start_restore_tracking();
        for round in 0..3u64 {
            // Mutate memory contents, protections, mappings and the
            // TLB/cache/memo state, then rewind incrementally.
            s.write_u64(VirtAddr(0x1010), 999 + round).unwrap();
            s.pkru = Pkru::deny_key(2);
            s.map_region(VirtAddr(0x9000), PAGE_SIZE, PageFlags::rw());
            s.poke(VirtAddr(0x9000), &round.to_le_bytes());
            s.mprotect(VirtAddr(0x2000), PAGE_SIZE, Prot::Read);
            s.restore_from(&src);

            // From here the rewound space and a fresh full clone must be
            // indistinguishable: same values, same faults, same stats.
            let mut full = src.clone();
            for va in [0x1000u64, 0x1010, 0x2008, 0x3000] {
                assert_eq!(
                    s.read_u64(VirtAddr(va)).unwrap(),
                    full.read_u64(VirtAddr(va)).unwrap(),
                    "round {round} va {va:#x}"
                );
            }
            assert!(
                matches!(s.read_u64(VirtAddr(0x9000)), Err(Fault::NotMapped { .. })),
                "round {round}: mapping added after tracking must be rewound"
            );
            assert!(matches!(
                full.read_u64(VirtAddr(0x9000)),
                Err(Fault::NotMapped { .. })
            ));
            assert_eq!(s.tlb_stats(), full.tlb_stats(), "round {round}");
            assert_eq!(s.cache_stats(), full.cache_stats(), "round {round}");
            assert_eq!(s.mprotect_calls(), full.mprotect_calls());
            assert_eq!(s.pkru, full.pkru);
        }
    }

    #[test]
    fn zero_length_access_still_checks_the_page() {
        // Regression: a zero-length access used to fabricate a successful
        // `AccessInfo` without running any permission check.
        let mut s = AddressSpace::new();
        assert!(matches!(
            s.read(VirtAddr(0x5000), &mut []),
            Err(Fault::NotMapped { .. })
        ));
        let mut s = space_with_page(0x5000, PageFlags::ro());
        assert!(matches!(
            s.write(VirtAddr(0x5000), &[]),
            Err(Fault::Protection {
                access: Access::Write,
                ..
            })
        ));
        // A permitted zero-length probe succeeds with real translation
        // info and, like `check_fetch`, touches no data cache.
        let mut s = space_with_page(0x5000, PageFlags::rw());
        let before = s.cache_stats();
        let info = s.read(VirtAddr(0x5000), &mut []).unwrap();
        assert!(!info.tlb_hit, "first touch walks");
        assert_eq!(s.cache_stats(), before, "no data transfer, no cache");
    }

    #[test]
    fn inline_cache_hit_is_observationally_identical() {
        // Drive one space through the IC entry and a twin through the
        // full path: values, faults and *digested* statistics must agree.
        let mut a = space_with_page(0xc000, PageFlags::rw());
        let mut b = space_with_page(0xc000, PageFlags::rw());
        let mut e = TransCacheEntry::INVALID;
        for i in 0..6u64 {
            let va = VirtAddr(0xc000 + i * 8);
            a.ic_write_u64(va, i, &mut e).unwrap();
            b.write_u64(va, i).unwrap();
        }
        assert!(a.translation_stats().ic_hits >= 4, "entry must hit");
        let mut e = TransCacheEntry::INVALID;
        for i in 0..6u64 {
            let va = VirtAddr(0xc000 + i * 8);
            assert_eq!(a.ic_read_u64(va, &mut e).unwrap().0, i);
            assert_eq!(b.read_u64(va).unwrap(), i);
        }
        assert_eq!(a.tlb_stats(), b.tlb_stats());
        assert_eq!(a.cache_stats(), b.cache_stats());
    }

    #[test]
    fn inline_cache_never_outlives_mutations() {
        let mut s = space_with_page(0xd000, PageFlags::rw());
        let mut e = TransCacheEntry::INVALID;
        s.ic_write_u64(VirtAddr(0xd000), 1, &mut e).unwrap();
        s.ic_write_u64(VirtAddr(0xd008), 2, &mut e).unwrap(); // filled
        // mprotect bumps the generation: the stale writable entry must
        // not serve the now read-only page.
        s.mprotect(VirtAddr(0xd000), PAGE_SIZE, Prot::Read);
        assert!(matches!(
            s.ic_write_u64(VirtAddr(0xd010), 3, &mut e),
            Err(Fault::Protection { .. })
        ));
        // Same for a pkru revocation on a read entry (value compare, no
        // generation bump).
        let mut s = space_with_page(0xd000, PageFlags::rw());
        s.pkey_mprotect(VirtAddr(0xd000), PAGE_SIZE, 6);
        let mut e = TransCacheEntry::INVALID;
        s.ic_read_u64(VirtAddr(0xd000), &mut e).unwrap();
        s.ic_read_u64(VirtAddr(0xd008), &mut e).unwrap();
        let gen = s.generation();
        s.pkru = Pkru::deny_key(6);
        assert_eq!(s.generation(), gen, "pkru writes do not bump the gen");
        assert!(matches!(
            s.ic_read_u64(VirtAddr(0xd010), &mut e),
            Err(Fault::PkeyDenied { key: 6, .. })
        ));
        // And a TLB insert for an unrelated page invalidates too (silent
        // conflict evictions make anything less unsound).
        let mut s = AddressSpace::new();
        s.map_region(VirtAddr(0xe000), PAGE_SIZE, PageFlags::rw());
        s.map_region(VirtAddr(0xf000), PAGE_SIZE, PageFlags::rw());
        let mut e = TransCacheEntry::INVALID;
        s.ic_write_u64(VirtAddr(0xe000), 1, &mut e).unwrap();
        let gen = s.generation();
        s.read_u64(VirtAddr(0xf000)).unwrap(); // walk + insert
        assert!(s.generation() > gen);
    }

    #[test]
    fn restore_moves_the_generation_past_both_timelines() {
        let mut s = space_with_page(0x1000, PageFlags::rw());
        let src = s.clone();
        s.start_restore_tracking();
        let mut e = TransCacheEntry::INVALID;
        s.ic_write_u64(VirtAddr(0x1000), 1, &mut e).unwrap();
        s.ic_write_u64(VirtAddr(0x1008), 2, &mut e).unwrap(); // filled
        let filled_at = s.generation();
        s.restore_from(&src);
        assert!(
            s.generation() > filled_at,
            "restore must orphan entries from the abandoned timeline"
        );
        // The stale entry misses and the access re-derives the *rewound*
        // contents, not the abandoned timeline's write.
        assert_eq!(s.ic_read_u64(VirtAddr(0x1000), &mut e).unwrap().0, 0);
    }

    #[test]
    fn peek_poke_bypass_checks() {
        let mut s = space_with_page(0x8000, PageFlags::ro());
        assert!(s.poke(VirtAddr(0x8000), b"kernel"));
        let mut buf = [0u8; 6];
        assert!(s.peek(VirtAddr(0x8000), &mut buf));
        assert_eq!(&buf, b"kernel");
        assert!(!s.poke(VirtAddr(0x0dea_d000), b"x"), "unmapped poke fails");
    }
}
