//! A three-level data-cache hierarchy.
//!
//! Table 4 of the paper reports the cache-level latencies (L1 4, L2 12,
//! L3 44, DRAM 251 cycles); this module provides the matching structural
//! model — set-associative LRU caches over physical cache lines — so the
//! working-set differences between benchmarks (mcf's 256 KiB vs povray's
//! 24 KiB) show up as real hit-level distributions rather than constants.
//!
//! Geometry is Skylake-like: 32 KiB 8-way L1D, 256 KiB 8-way L2, 8 MiB
//! 16-way L3, 64-byte lines.

/// Cache line size in bytes.
pub const LINE: u64 = 64;

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// L1 data cache.
    L1,
    /// Unified L2.
    L2,
    /// Shared L3.
    L3,
    /// Main memory.
    Dram,
}

/// Per-level hit counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// L1 hits.
    pub l1: u64,
    /// L2 hits.
    pub l2: u64,
    /// L3 hits.
    pub l3: u64,
    /// Memory accesses.
    pub dram: u64,
}

/// One set-associative LRU cache level.
#[derive(Debug, Clone)]
struct Level {
    sets: Vec<Vec<u64>>, // most-recently-used first
    assoc: usize,
    set_mask: u64,
}

impl Level {
    fn new(size_bytes: u64, assoc: usize) -> Self {
        let sets = (size_bytes / LINE / assoc as u64).max(1);
        assert!(sets.is_power_of_two(), "cache sets must be a power of two");
        Self {
            sets: (0..sets).map(|_| Vec::with_capacity(assoc)).collect(),
            assoc,
            set_mask: sets - 1,
        }
    }

    /// Looks up (and on miss, fills) `line`; returns whether it hit.
    fn access(&mut self, line: u64) -> bool {
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let tag = set.remove(pos);
            set.insert(0, tag);
            true
        } else {
            if set.len() == self.assoc {
                set.pop();
            }
            set.insert(0, line);
            false
        }
    }
}

/// The full hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Level,
    l2: Level,
    l3: Level,
    stats: CacheStats,
}

impl Default for CacheHierarchy {
    fn default() -> Self {
        Self::new()
    }
}

impl CacheHierarchy {
    /// A Skylake-like hierarchy.
    pub fn new() -> Self {
        Self {
            l1: Level::new(32 << 10, 8),
            l2: Level::new(256 << 10, 8),
            l3: Level::new(8 << 20, 16),
            stats: CacheStats::default(),
        }
    }

    /// Accesses the line containing physical address `pa`, filling all
    /// levels on the way in (inclusive hierarchy).
    pub fn access(&mut self, pa: u64) -> HitLevel {
        let line = pa / LINE;
        if self.l1.access(line) {
            self.stats.l1 += 1;
            return HitLevel::L1;
        }
        if self.l2.access(line) {
            self.stats.l2 += 1;
            return HitLevel::L2;
        }
        if self.l3.access(line) {
            self.stats.l3 += 1;
            return HitLevel::L3;
        }
        self.stats.dram += 1;
        HitLevel::Dram
    }

    /// Accumulated per-level counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_to_dram_then_hits_l1() {
        let mut c = CacheHierarchy::new();
        assert_eq!(c.access(0x1000), HitLevel::Dram);
        assert_eq!(c.access(0x1000), HitLevel::L1);
        assert_eq!(c.access(0x1008), HitLevel::L1, "same line");
        assert_eq!(c.access(0x1040), HitLevel::Dram, "next line");
    }

    #[test]
    fn working_set_larger_than_l1_hits_l2() {
        let mut c = CacheHierarchy::new();
        // 64 KiB working set: fits L2, not L1 (32 KiB).
        let lines: Vec<u64> = (0..1024u64).map(|i| i * LINE).collect();
        for &a in &lines {
            c.access(a);
        }
        // Second pass: mostly L2 (L1 keeps the hot tail).
        let mut l2 = 0;
        for &a in &lines {
            if c.access(a) == HitLevel::L2 {
                l2 += 1;
            }
        }
        assert!(l2 > 400, "L2 hits on second pass: {l2}");
    }

    #[test]
    fn working_set_larger_than_l2_hits_l3() {
        let mut c = CacheHierarchy::new();
        // 1 MiB working set: fits L3, not L2.
        let lines: Vec<u64> = (0..16_384u64).map(|i| i * LINE).collect();
        for &a in &lines {
            c.access(a);
        }
        let mut l3 = 0;
        for &a in &lines {
            if c.access(a) == HitLevel::L3 {
                l3 += 1;
            }
        }
        assert!(l3 > 8_000, "L3 hits on second pass: {l3}");
    }

    #[test]
    fn lru_keeps_the_hot_line() {
        let mut c = CacheHierarchy::new();
        let hot = 0u64;
        c.access(hot);
        // Touch 7 more lines in the same set (8-way): hot stays.
        let sets = 32 * 1024 / 64 / 8; // 64 sets
        for i in 1..8u64 {
            c.access(hot + i * sets as u64 * LINE);
            c.access(hot); // keep it most recent
        }
        assert_eq!(c.access(hot), HitLevel::L1);
    }

    #[test]
    fn stats_add_up() {
        let mut c = CacheHierarchy::new();
        for i in 0..100u64 {
            c.access(i * LINE);
        }
        for i in 0..100u64 {
            c.access(i * LINE);
        }
        let s = c.stats();
        assert_eq!(s.l1 + s.l2 + s.l3 + s.dram, 200);
        assert_eq!(s.dram, 100);
        assert_eq!(s.l1, 100);
    }
}
