//! A three-level data-cache hierarchy.
//!
//! Table 4 of the paper reports the cache-level latencies (L1 4, L2 12,
//! L3 44, DRAM 251 cycles); this module provides the matching structural
//! model — set-associative LRU caches over physical cache lines — so the
//! working-set differences between benchmarks (mcf's 256 KiB vs povray's
//! 24 KiB) show up as real hit-level distributions rather than constants.
//!
//! Geometry is Skylake-like: 32 KiB 8-way L1D, 256 KiB 8-way L2, 8 MiB
//! 16-way L3, 64-byte lines.

use crate::digest::Digest;

/// Cache line size in bytes.
pub const LINE: u64 = 64;

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// L1 data cache.
    L1,
    /// Unified L2.
    L2,
    /// Shared L3.
    L3,
    /// Main memory.
    Dram,
}

/// Per-level hit counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// L1 hits.
    pub l1: u64,
    /// L2 hits.
    pub l2: u64,
    /// L3 hits.
    pub l3: u64,
    /// Memory accesses.
    pub dram: u64,
}

/// One set-associative LRU cache level.
///
/// Tag storage is one flat set-major array (`assoc` slots per set,
/// MRU-first within a set) rather than a `Vec` per set: an 8-way set's
/// tags span exactly one 64-byte host line, so the lookup scan touches a
/// single cache line with no per-set pointer chase — this sits on the
/// simulator's per-memory-access hot path.
#[derive(Debug, Clone)]
struct Level {
    /// `n_sets * assoc` tag slots, set-major, MRU-first; only the first
    /// `lens[set]` slots of a set are live.
    tags: Box<[u64]>,
    /// Live ways per set (`<= assoc`, which is at most 16).
    lens: Box<[u8]>,
    assoc: usize,
    set_mask: u64,
    /// Dirty-set tracking for delta restores: while `tracking` is on,
    /// every set an access touches is recorded in `dirty` (deduplicated
    /// by `dirty_bits`), so a rewind copies back a handful of sets
    /// instead of all of them. Bookkeeping only — set contents define
    /// equality.
    tracking: bool,
    dirty: Vec<u32>,
    dirty_bits: Vec<u64>,
}

impl Level {
    fn new(size_bytes: u64, assoc: usize) -> Self {
        let sets = (size_bytes / LINE / assoc as u64).max(1);
        assert!(sets.is_power_of_two(), "cache sets must be a power of two");
        assert!(assoc <= u8::MAX as usize, "way count must fit a u8");
        Self {
            tags: vec![0; sets as usize * assoc].into_boxed_slice(),
            lens: vec![0; sets as usize].into_boxed_slice(),
            assoc,
            set_mask: sets - 1,
            tracking: false,
            dirty: Vec::new(),
            dirty_bits: vec![0; (sets as usize >> 6) + 1],
        }
    }

    /// Looks up (and on miss, fills) `line`; returns whether it hit.
    #[inline(always)]
    fn access(&mut self, line: u64) -> bool {
        let idx = (line & self.set_mask) as usize;
        if self.tracking {
            let bit = 1u64 << (idx & 63);
            if self.dirty_bits[idx >> 6] & bit == 0 {
                self.dirty_bits[idx >> 6] |= bit;
                self.dirty.push(idx as u32);
            }
        }
        let base = idx * self.assoc;
        let len = self.lens[idx] as usize;
        let set = &mut self.tags[base..base + len];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            // Manual move-to-front: shift the tags above the hit down a
            // slot and refile the hit at the head — identical MRU order
            // to a by-one rotate, but a MRU-position hit (`pos == 0`,
            // the common case) does no work, where the generic
            // `rotate_right` stays an outlined call on this hot path.
            let mut i = pos;
            while i > 0 {
                set[i] = set[i - 1];
                i -= 1;
            }
            set[0] = line;
            true
        } else {
            if len == self.assoc {
                // Evict: shift everything down a slot (the LRU tail
                // falls off) and fill the head.
                let mut i = len - 1;
                while i > 0 {
                    set[i] = set[i - 1];
                    i -= 1;
                }
                set[0] = line;
            } else {
                // Fill: shift the live tags right one slot, grow the
                // set, and fill the head.
                let mut i = len;
                while i > 0 {
                    self.tags[base + i] = self.tags[base + i - 1];
                    i -= 1;
                }
                self.tags[base] = line;
                self.lens[idx] = len as u8 + 1;
            }
            false
        }
    }

    fn start_tracking(&mut self) {
        self.tracking = true;
        for w in &mut self.dirty_bits {
            *w = 0;
        }
        self.dirty.clear();
    }

    /// Feeds the level's semantic state — every set's tags in MRU order
    /// — into `d`. Tracking bookkeeping and dead tag slots are excluded
    /// (live set contents define equality, per the field docs). The byte
    /// stream is identical to the earlier `Vec<Vec<u64>>` layout's.
    fn digest_into(&self, d: &mut Digest) {
        d.write_u64(self.lens.len() as u64);
        for (idx, &len) in self.lens.iter().enumerate() {
            d.write_u64(u64::from(len));
            let base = idx * self.assoc;
            for &tag in &self.tags[base..base + len as usize] {
                d.write_u64(tag);
            }
        }
    }

    /// Rewinds only the sets dirtied since tracking (re)started; `src`
    /// must be the state `self` had at that moment (same geometry).
    fn restore_from(&mut self, src: &Level) {
        for i in 0..self.dirty.len() {
            let idx = self.dirty[i] as usize;
            let base = idx * self.assoc;
            self.tags[base..base + self.assoc].copy_from_slice(&src.tags[base..base + self.assoc]);
            self.lens[idx] = src.lens[idx];
        }
        for w in &mut self.dirty_bits {
            *w = 0;
        }
        self.dirty.clear();
    }
}

/// "No line" sentinel for the same-line short-circuit (no physical
/// address maps to it: `pa / LINE` cannot reach `u64::MAX`).
const NO_LINE: u64 = u64::MAX;

/// The full hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Level,
    l2: Level,
    l3: Level,
    stats: CacheStats,
    /// Same-line short-circuit: the line most recently accessed, which
    /// by construction sits at MRU position of its L1 set (a hit moves
    /// it to the head, a miss fills at the head). A repeat access to it
    /// is a position-0 L1 hit that mutates no set contents, so
    /// [`Self::access`] serves it with a single compare and the `l1`
    /// counter bump — provably the same observable outcome as the full
    /// lookup. Pure memo state: excluded from [`Self::digest_into`] and
    /// reset by [`Self::restore_from`] (a rewind changes set contents
    /// out from under it).
    last_line: u64,
}

impl Default for CacheHierarchy {
    fn default() -> Self {
        Self::new()
    }
}

impl CacheHierarchy {
    /// A Skylake-like hierarchy.
    pub fn new() -> Self {
        Self {
            l1: Level::new(32 << 10, 8),
            l2: Level::new(256 << 10, 8),
            l3: Level::new(8 << 20, 16),
            stats: CacheStats::default(),
            last_line: NO_LINE,
        }
    }

    /// Accesses the line containing physical address `pa`, filling all
    /// levels on the way in (inclusive hierarchy).
    #[inline(always)]
    pub fn access(&mut self, pa: u64) -> HitLevel {
        let line = pa / LINE;
        if line == self.last_line {
            // Repeat access to the line at MRU of its L1 set: the full
            // lookup would hit at position 0 and mutate nothing (the
            // dirty-set mark it skips is restore bookkeeping, and an
            // unmutated set needs none).
            self.stats.l1 += 1;
            return HitLevel::L1;
        }
        self.last_line = line;
        if self.l1.access(line) {
            self.stats.l1 += 1;
            return HitLevel::L1;
        }
        if self.l2.access(line) {
            self.stats.l2 += 1;
            return HitLevel::L2;
        }
        if self.l3.access(line) {
            self.stats.l3 += 1;
            return HitLevel::L3;
        }
        self.stats.dram += 1;
        HitLevel::Dram
    }

    /// Accumulated per-level counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Feeds the hierarchy's semantic state (all three levels' set
    /// contents plus the hit counters) into `d`.
    pub fn digest_into(&self, d: &mut Digest) {
        self.l1.digest_into(d);
        self.l2.digest_into(d);
        self.l3.digest_into(d);
        d.write_u64(self.stats.l1);
        d.write_u64(self.stats.l2);
        d.write_u64(self.stats.l3);
        d.write_u64(self.stats.dram);
    }

    /// Starts (or restarts) dirty-set tracking on every level so a later
    /// [`Self::restore_from`] can rewind incrementally. Call at the
    /// moment `self` is identical to the hierarchy it will be rewound to.
    pub fn start_tracking(&mut self) {
        self.l1.start_tracking();
        self.l2.start_tracking();
        self.l3.start_tracking();
    }

    /// Rewinds `self` to the state of `src` by copying back only the
    /// sets touched since tracking (re)started — the incremental
    /// counterpart of cloning all ~8.8k per-set vectors. Precondition:
    /// `self` was identical to `src` when tracking last (re)started and
    /// has only been mutated through [`Self::access`] since. Clears the
    /// dirty lists, so consecutive rewinds to the same `src` keep
    /// working.
    pub fn restore_from(&mut self, src: &CacheHierarchy) {
        self.l1.restore_from(&src.l1);
        self.l2.restore_from(&src.l2);
        self.l3.restore_from(&src.l3);
        self.stats = src.stats;
        // The rewind may have changed the memoized line's set.
        self.last_line = NO_LINE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_to_dram_then_hits_l1() {
        let mut c = CacheHierarchy::new();
        assert_eq!(c.access(0x1000), HitLevel::Dram);
        assert_eq!(c.access(0x1000), HitLevel::L1);
        assert_eq!(c.access(0x1008), HitLevel::L1, "same line");
        assert_eq!(c.access(0x1040), HitLevel::Dram, "next line");
    }

    #[test]
    fn working_set_larger_than_l1_hits_l2() {
        let mut c = CacheHierarchy::new();
        // 64 KiB working set: fits L2, not L1 (32 KiB).
        let lines: Vec<u64> = (0..1024u64).map(|i| i * LINE).collect();
        for &a in &lines {
            c.access(a);
        }
        // Second pass: mostly L2 (L1 keeps the hot tail).
        let mut l2 = 0;
        for &a in &lines {
            if c.access(a) == HitLevel::L2 {
                l2 += 1;
            }
        }
        assert!(l2 > 400, "L2 hits on second pass: {l2}");
    }

    #[test]
    fn working_set_larger_than_l2_hits_l3() {
        let mut c = CacheHierarchy::new();
        // 1 MiB working set: fits L3, not L2.
        let lines: Vec<u64> = (0..16_384u64).map(|i| i * LINE).collect();
        for &a in &lines {
            c.access(a);
        }
        let mut l3 = 0;
        for &a in &lines {
            if c.access(a) == HitLevel::L3 {
                l3 += 1;
            }
        }
        assert!(l3 > 8_000, "L3 hits on second pass: {l3}");
    }

    #[test]
    fn lru_keeps_the_hot_line() {
        let mut c = CacheHierarchy::new();
        let hot = 0u64;
        c.access(hot);
        // Touch 7 more lines in the same set (8-way): hot stays.
        let sets = 32 * 1024 / 64 / 8; // 64 sets
        for i in 1..8u64 {
            c.access(hot + i * sets as u64 * LINE);
            c.access(hot); // keep it most recent
        }
        assert_eq!(c.access(hot), HitLevel::L1);
    }

    #[test]
    fn tracked_restore_matches_a_full_clone() {
        // Warm a hierarchy, snapshot it, keep accessing, then rewind both
        // incrementally and by full clone: subsequent accesses must see
        // identical hit levels and stats on both.
        let mut c = CacheHierarchy::new();
        for i in 0..2000u64 {
            c.access(i * LINE * 7);
        }
        let src = c.clone();
        c.start_tracking();
        for round in 0..3 {
            for i in 0..500u64 {
                c.access(i * LINE * 13 + round);
            }
            c.restore_from(&src);
            let mut full = src.clone();
            assert_eq!(c.stats(), full.stats(), "round {round}");
            for i in 0..200u64 {
                assert_eq!(
                    c.access(i * LINE * 3),
                    full.access(i * LINE * 3),
                    "round {round} line {i}"
                );
            }
            assert_eq!(c.stats(), full.stats(), "round {round} after probe");
            c.restore_from(&src);
        }
    }

    #[test]
    fn same_line_short_circuit_is_observationally_invisible() {
        // Two hierarchies with identical set contents but divergent
        // short-circuit memo state (one was rewound, clearing it) must
        // digest identically and behave identically forever after —
        // including on the repeat accesses the memo serves.
        let dig = |c: &CacheHierarchy| {
            let mut d = Digest::new();
            c.digest_into(&mut d);
            d.finish()
        };
        let mut a = CacheHierarchy::new();
        for i in 0..200u64 {
            a.access(i * LINE);
        }
        a.access(0); // memo = line 0
        let snap = a.clone();
        let mut b = snap.clone(); // memo intact
        a.start_tracking();
        a.restore_from(&snap); // memo cleared, contents unchanged
        assert_eq!(dig(&a), dig(&b), "memo state must not digest");
        assert_eq!(a.stats(), b.stats());
        // Repeats, conflicting lines, repeats again: identical outcomes.
        for pa in [0u64, 0, 8, 64, 64, 0, 4096, 4096, 4096, 0, 8] {
            assert_eq!(a.access(pa), b.access(pa), "pa {pa:#x}");
        }
        assert_eq!(dig(&a), dig(&b));
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn stats_add_up() {
        let mut c = CacheHierarchy::new();
        for i in 0..100u64 {
            c.access(i * LINE);
        }
        for i in 0..100u64 {
            c.access(i * LINE);
        }
        let s = c.stats();
        assert_eq!(s.l1 + s.l2 + s.l3 + s.dram, 200);
        assert_eq!(s.dram, 100);
        assert_eq!(s.l1, 100);
    }
}
