//! Extended page tables and EPT-pointer switching.
//!
//! Under VT-x, guest-physical addresses produced by the guest's own page
//! tables are translated again through the active EPT. The VMFUNC isolation
//! technique (paper §3.1, §5.1) maintains a *list* of EPTs: every EPT maps
//! all normal pages, but the safe region's pages are present **only** in the
//! secure EPT. The guest switches the active EPT with
//! `vmfunc(0, index)` — no hypervisor exit — so sensitive pages exist only
//! between the open/close calls the instrumentation inserts.
//!
//! This module models the EPT list at page granularity. The Dune-like
//! hypervisor in `memsentry-hv` populates it on demand, mirrors the paper's
//! "mark mapping secret" hypercall, and exposes `vmfunc`.

use std::collections::HashMap;

/// Access attempted through the EPT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EptAccess {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Exec,
}

/// An EPT violation (would be a VM exit on real hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EptViolation {
    /// Guest-physical frame number of the faulting access.
    pub gpfn: u64,
    /// The access that faulted.
    pub access: EptAccess,
    /// Index of the EPT that was active.
    pub ept_index: usize,
}

/// One guest-physical-to-host mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EptEntry {
    /// Host physical frame number.
    pub hpfn: u64,
    /// Read permitted.
    pub read: bool,
    /// Write permitted.
    pub write: bool,
    /// Execute permitted.
    pub exec: bool,
}

impl EptEntry {
    /// Identity RWX mapping for `gpfn`.
    pub fn identity(gpfn: u64) -> Self {
        Self {
            hpfn: gpfn,
            read: true,
            write: true,
            exec: true,
        }
    }

    fn permits(&self, access: EptAccess) -> bool {
        match access {
            EptAccess::Read => self.read,
            EptAccess::Write => self.write,
            EptAccess::Exec => self.exec,
        }
    }
}

/// One extended page table.
#[derive(Debug, Default, Clone)]
pub struct Ept {
    entries: HashMap<u64, Option<EptEntry>>,
}

impl Ept {
    /// Looks up `gpfn`; `None` means not yet populated (an EPT fault the
    /// hypervisor may service on demand), `Some(None)` means explicitly
    /// unmapped (a secret page of another domain).
    pub fn lookup(&self, gpfn: u64) -> Option<Option<EptEntry>> {
        self.entries.get(&gpfn).copied()
    }

    /// Installs a mapping.
    pub fn map(&mut self, gpfn: u64, entry: EptEntry) {
        self.entries.insert(gpfn, Some(entry));
    }

    /// Explicitly removes a mapping so on-demand population cannot restore
    /// it (how secret pages are hidden from the non-secure EPTs).
    pub fn deny(&mut self, gpfn: u64) {
        self.entries.insert(gpfn, None);
    }

    /// Feeds the table's mappings into `d` in sorted-gpfn order (the
    /// backing map iterates in arbitrary order, so sorting keeps the
    /// digest deterministic).
    pub fn digest_into(&self, d: &mut crate::digest::Digest) {
        let mut gpfns: Vec<u64> = self.entries.keys().copied().collect();
        gpfns.sort_unstable();
        d.write_u64(gpfns.len() as u64);
        for gpfn in gpfns {
            d.write_u64(gpfn);
            match self.entries[&gpfn] {
                Some(e) => {
                    d.write_u8(1);
                    d.write_u64(e.hpfn);
                    d.write_u8(e.read as u8);
                    d.write_u8(e.write as u8);
                    d.write_u8(e.exec as u8);
                }
                None => d.write_u8(0),
            }
        }
    }

    /// Number of populated (or denied) slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no slots are populated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The hypervisor's list of EPTs plus the active pointer.
#[derive(Debug, Clone)]
pub struct EptSet {
    epts: Vec<Ept>,
    active: usize,
    /// When `true`, unpopulated slots fault into on-demand identity
    /// mappings (like Dune's demand-fill) rather than violating.
    demand_fill: bool,
    switches: u64,
}

/// Maximum number of EPTP-list entries supported by `vmfunc` (Table 3).
pub const MAX_EPTS: usize = 512;

impl EptSet {
    /// Creates `count` empty EPTs with EPT 0 active.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds [`MAX_EPTS`]; the EPTP list is a
    /// fixed-size hardware structure configured by the hypervisor.
    pub fn new(count: usize, demand_fill: bool) -> Self {
        assert!((1..=MAX_EPTS).contains(&count), "EPTP list size {count}");
        Self {
            epts: (0..count).map(|_| Ept::default()).collect(),
            active: 0,
            demand_fill,
            switches: 0,
        }
    }

    /// Number of EPTs in the list.
    pub fn count(&self) -> usize {
        self.epts.len()
    }

    /// Index of the active EPT.
    pub fn active_index(&self) -> usize {
        self.active
    }

    /// Feeds the whole EPTP list (every table, the active pointer, the
    /// fill policy and the switch counter) into `d`.
    pub fn digest_into(&self, d: &mut crate::digest::Digest) {
        d.write_u64(self.epts.len() as u64);
        for ept in &self.epts {
            ept.digest_into(d);
        }
        d.write_u64(self.active as u64);
        d.write_u8(self.demand_fill as u8);
        d.write_u64(self.switches);
    }

    /// Number of `vmfunc` switches performed.
    pub fn switch_count(&self) -> u64 {
        self.switches
    }

    /// `vmfunc(0, index)`: switches the active EPT.
    ///
    /// Returns `false` (a VM exit on hardware) if `index` is out of range.
    pub fn vmfunc_switch(&mut self, index: usize) -> bool {
        if index >= self.epts.len() {
            return false;
        }
        self.active = index;
        self.switches += 1;
        true
    }

    /// Accesses EPT `index` mutably (hypervisor-side operation).
    pub fn ept_mut(&mut self, index: usize) -> &mut Ept {
        &mut self.epts[index]
    }

    /// Marks `gpfn` secret to EPT `owner`: mapped there, denied everywhere
    /// else. This is the hypercall MemSentry adds to Dune (paper §5.1).
    pub fn mark_secret(&mut self, gpfn: u64, owner: usize) {
        for (i, ept) in self.epts.iter_mut().enumerate() {
            if i == owner {
                ept.map(gpfn, EptEntry::identity(gpfn));
            } else {
                ept.deny(gpfn);
            }
        }
    }

    /// Translates `gpfn` through the active EPT.
    pub fn translate(&mut self, gpfn: u64, access: EptAccess) -> Result<u64, EptViolation> {
        let violation = EptViolation {
            gpfn,
            access,
            ept_index: self.active,
        };
        let ept = &mut self.epts[self.active];
        match ept.lookup(gpfn) {
            Some(Some(entry)) => {
                if entry.permits(access) {
                    Ok(entry.hpfn)
                } else {
                    Err(violation)
                }
            }
            Some(None) => Err(violation),
            None => {
                if self.demand_fill {
                    // Dune-style: populate an identity mapping on fault.
                    ept.map(gpfn, EptEntry::identity(gpfn));
                    Ok(gpfn)
                } else {
                    Err(violation)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_fill_populates_identity() {
        let mut set = EptSet::new(2, true);
        assert_eq!(set.translate(7, EptAccess::Read), Ok(7));
        assert_eq!(set.epts[0].len(), 1);
    }

    #[test]
    fn without_demand_fill_unpopulated_violates() {
        let mut set = EptSet::new(1, false);
        let err = set.translate(7, EptAccess::Read).unwrap_err();
        assert_eq!(err.gpfn, 7);
        assert_eq!(err.ept_index, 0);
    }

    #[test]
    fn secret_page_visible_only_in_owner_ept() {
        let mut set = EptSet::new(2, true);
        set.mark_secret(100, 1);
        // From EPT 0 (default domain) the page violates...
        let err = set.translate(100, EptAccess::Read).unwrap_err();
        assert_eq!(err.access, EptAccess::Read);
        // ...and demand fill must NOT resurrect it.
        assert!(set.translate(100, EptAccess::Read).is_err());
        // After vmfunc to the secure EPT the page is reachable.
        assert!(set.vmfunc_switch(1));
        assert_eq!(set.translate(100, EptAccess::Read), Ok(100));
        // Normal pages stay reachable from both.
        assert_eq!(set.translate(5, EptAccess::Write), Ok(5));
        assert!(set.vmfunc_switch(0));
        assert_eq!(set.translate(5, EptAccess::Write), Ok(5));
    }

    #[test]
    fn vmfunc_rejects_out_of_range_index() {
        let mut set = EptSet::new(2, true);
        assert!(!set.vmfunc_switch(2));
        assert_eq!(set.active_index(), 0);
    }

    #[test]
    fn switch_count_tracks_vmfuncs() {
        let mut set = EptSet::new(3, true);
        set.vmfunc_switch(1);
        set.vmfunc_switch(2);
        set.vmfunc_switch(0);
        assert_eq!(set.switch_count(), 3);
    }

    #[test]
    fn permission_bits_are_enforced() {
        let mut set = EptSet::new(1, false);
        set.ept_mut(0).map(
            9,
            EptEntry {
                hpfn: 9,
                read: true,
                write: false,
                exec: false,
            },
        );
        assert!(set.translate(9, EptAccess::Read).is_ok());
        assert!(set.translate(9, EptAccess::Write).is_err());
        assert!(set.translate(9, EptAccess::Exec).is_err());
    }

    #[test]
    #[should_panic(expected = "EPTP list size")]
    fn oversized_ept_list_panics() {
        EptSet::new(MAX_EPTS + 1, true);
    }
}
