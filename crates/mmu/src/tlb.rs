//! A small direct-mapped TLB with PCID tagging and statistics.
//!
//! Techniques differ in the TLB pressure they cause — VMFUNC switches
//! invalidate nothing thanks to VPID tagging, `mprotect` must flush, and
//! the page-table-switching extension relies on PCID tags so switching
//! address-space views does not flush either (the "optionally sped up
//! using the PCID feature" alternative of paper §3.1). The TLB is modeled
//! explicitly and its hit/miss counts feed the cycle cost model.

use crate::digest::Digest;
use crate::pte::Pte;

/// Number of TLB entries (a Skylake-ish L1 dTLB).
pub const TLB_ENTRIES: usize = 64;

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that found a valid entry.
    pub hits: u64,
    /// Lookups that required a page walk.
    pub misses: u64,
    /// Full flushes performed.
    pub flushes: u64,
    /// Single-page invalidations (`invlpg`) executed, counted whether or
    /// not the page was actually cached — the cost the kernel pays per
    /// `mprotect`/`munmap` page, which the PTS/mprotect ablations assert
    /// on.
    pub page_flushes: u64,
}

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    pcid: u16,
    vpn: u64,
    pte: Pte,
    valid: bool,
}

/// A direct-mapped, PCID-tagged translation lookaside buffer.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<TlbEntry>,
    stats: TlbStats,
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new()
    }
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new() -> Self {
        Self {
            entries: vec![
                TlbEntry {
                    pcid: 0,
                    vpn: 0,
                    pte: Pte(0),
                    valid: false,
                };
                TLB_ENTRIES
            ],
            stats: TlbStats::default(),
        }
    }

    /// Looks up the leaf PTE cached for `vpn` in address space `pcid`,
    /// recording a hit or miss.
    #[inline(always)]
    pub fn lookup(&mut self, pcid: u16, vpn: u64) -> Option<Pte> {
        let slot = (vpn as usize) % TLB_ENTRIES;
        let e = self.entries[slot];
        if e.valid && e.vpn == vpn && e.pcid == pcid {
            self.stats.hits += 1;
            Some(e.pte)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Records a hit without probing the entry array.
    ///
    /// The inline translation cache's generation check has already
    /// established that the entry is resident and would hit (see
    /// `space::TransCacheEntry`), so its fast path charges the hit
    /// statistic — which is part of the machine digest — without paying
    /// for the probe.
    #[inline(always)]
    pub fn note_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Installs a translation after a successful walk.
    #[inline]
    pub fn insert(&mut self, pcid: u16, vpn: u64, pte: Pte) {
        let slot = (vpn as usize) % TLB_ENTRIES;
        self.entries[slot] = TlbEntry {
            pcid,
            vpn,
            pte,
            valid: true,
        };
    }

    /// Invalidates the entry for one page in every address space
    /// (`invlpg` broadcast; the kernel invalidates across PCIDs).
    pub fn flush_page(&mut self, vpn: u64) {
        self.stats.page_flushes += 1;
        let slot = (vpn as usize) % TLB_ENTRIES;
        if self.entries[slot].vpn == vpn {
            self.entries[slot].valid = false;
        }
    }

    /// Invalidates everything (`mov cr3` without PCID).
    pub fn flush_all(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
        self.stats.flushes += 1;
    }

    /// Returns the accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Feeds the TLB's semantic state into `d`: every valid entry as
    /// `(slot, pcid, vpn, pte)` plus the statistics. Invalid slots digest
    /// identically regardless of the stale tag bits they retain.
    pub fn digest_into(&self, d: &mut Digest) {
        for (slot, e) in self.entries.iter().enumerate() {
            if e.valid {
                d.write_u64(slot as u64);
                d.write_u64(e.pcid as u64);
                d.write_u64(e.vpn);
                d.write_u64(e.pte.0);
            }
        }
        d.write_u64(self.stats.hits);
        d.write_u64(self.stats.misses);
        d.write_u64(self.stats.flushes);
        d.write_u64(self.stats.page_flushes);
    }

    /// Copies `src`'s entries and statistics into `self` without
    /// reallocating (both TLBs have the fixed [`TLB_ENTRIES`] geometry).
    /// The allocation-free counterpart of `*self = src.clone()`, used by
    /// the snapshot engine's delta restore.
    pub fn restore_from(&mut self, src: &Tlb) {
        self.entries.copy_from_slice(&src.entries);
        self.stats = src.stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;
    use crate::pte::PageFlags;

    fn pte() -> Pte {
        Pte::leaf(PhysAddr(0x5000), PageFlags::rw())
    }

    #[test]
    fn miss_then_hit() {
        let mut tlb = Tlb::new();
        assert!(tlb.lookup(0, 42).is_none());
        tlb.insert(0, 42, pte());
        assert_eq!(tlb.lookup(0, 42), Some(pte()));
        assert_eq!(
            tlb.stats(),
            TlbStats {
                hits: 1,
                misses: 1,
                flushes: 0,
                page_flushes: 0
            }
        );
    }

    #[test]
    fn conflicting_vpns_evict() {
        let mut tlb = Tlb::new();
        tlb.insert(0, 1, pte());
        tlb.insert(0, 1 + TLB_ENTRIES as u64, pte());
        assert!(tlb.lookup(0, 1).is_none(), "same slot, different vpn");
    }

    #[test]
    fn pcid_tags_isolate_address_spaces() {
        // The crucial PCID property: an entry cached for one address
        // space must never serve another, even for the same vpn.
        let mut tlb = Tlb::new();
        tlb.insert(0, 7, pte());
        assert!(tlb.lookup(1, 7).is_none(), "view 1 must re-walk");
        // And switching back still hits — no flush happened.
        assert!(tlb.lookup(0, 7).is_some());
    }

    #[test]
    fn flush_page_only_invalidates_target() {
        let mut tlb = Tlb::new();
        tlb.insert(0, 3, pte());
        tlb.insert(0, 4, pte());
        tlb.flush_page(3);
        assert!(tlb.lookup(0, 3).is_none());
        assert!(tlb.lookup(0, 4).is_some());
        assert_eq!(tlb.stats().page_flushes, 1);
    }

    #[test]
    fn flush_page_counts_even_when_page_is_not_cached() {
        // A different vpn occupying the slot must survive the invlpg, but
        // the invalidation itself still happened and must be visible in
        // the stats (the mprotect/PTS ablations count these).
        let mut tlb = Tlb::new();
        tlb.insert(0, 5, pte());
        tlb.flush_page(5 + TLB_ENTRIES as u64); // same slot, different vpn
        assert!(tlb.lookup(0, 5).is_some(), "resident entry must survive");
        assert_eq!(tlb.stats().page_flushes, 1);
        tlb.flush_page(999); // empty slot
        assert_eq!(tlb.stats().page_flushes, 2);
    }

    #[test]
    fn restore_from_copies_entries_and_stats() {
        let mut src = Tlb::new();
        src.insert(0, 3, pte());
        src.lookup(0, 3);
        src.lookup(0, 4);
        let mut t = Tlb::new();
        t.insert(1, 9, pte());
        t.restore_from(&src);
        assert_eq!(t.lookup(1, 9), None, "old entry must be gone");
        // Account for the miss the probe above just recorded.
        let mut expect = src.stats();
        expect.misses += 1;
        assert_eq!(t.stats(), expect);
        assert_eq!(t.lookup(0, 3), Some(pte()));
    }

    #[test]
    fn flush_all_invalidates_everything_and_counts() {
        let mut tlb = Tlb::new();
        for vpn in 0..16 {
            tlb.insert(0, vpn, pte());
        }
        tlb.flush_all();
        for vpn in 0..16 {
            assert!(tlb.lookup(0, vpn).is_none());
        }
        assert_eq!(tlb.stats().flushes, 1);
    }
}
