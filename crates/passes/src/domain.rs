//! Domain-based instrumentation: wrapping switch points with open/close.
//!
//! Two flavours, matching how the paper uses domain switching:
//!
//! * **Event points** (call/ret, indirect branches, system calls,
//!   allocator calls): the open/close pair is inserted *before* the event
//!   instruction — the defense's privileged work (e.g. a shadow-stack
//!   push) happens inside that window, and the domain is closed again
//!   before control transfers. This is what Figures 4-6 measure.
//! * **Privileged instructions** (the `saferegion_access` annotation): the
//!   instruction itself must run with the domain open, so the pass brackets
//!   it: open before, close after.

use memsentry_ir::{Inst, InstNode, Program};

use crate::manager::{Pass, PassFailure};
use crate::sequences::DomainSequences;

/// Which instructions are instrumentation points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchPoints {
    /// Every `call` and `ret` (shadow stacks; Figure 4).
    CallRet,
    /// Every indirect branch (CFI, layout randomization; Figure 5).
    IndirectBranch,
    /// Every system call (TASR-style, I/O interposition; Figure 6).
    Syscall,
    /// Every `malloc`/`free` (heap protectors; paper §6.2 "similar
    /// results for calls to the allocator").
    AllocatorCall,
    /// Every instruction annotated privileged (arbitrary program data).
    Privileged,
}

impl SwitchPoints {
    fn matches(self, node: &InstNode) -> bool {
        match self {
            SwitchPoints::CallRet => node.inst.is_call_or_ret(),
            SwitchPoints::IndirectBranch => node.inst.is_indirect_branch(),
            SwitchPoints::Syscall => node.inst.is_syscall(),
            SwitchPoints::AllocatorCall => node.inst.is_allocator_call(),
            SwitchPoints::Privileged => node.privileged,
        }
    }
}

/// The domain-switch instrumentation pass.
#[derive(Debug, Clone)]
pub struct DomainSwitchPass {
    /// Which instructions get a domain switch.
    pub points: SwitchPoints,
    /// The technique's open/close sequences.
    pub sequences: DomainSequences,
}

impl DomainSwitchPass {
    /// Creates the pass.
    pub fn new(points: SwitchPoints, sequences: DomainSequences) -> Self {
        Self { points, sequences }
    }
}

impl Pass for DomainSwitchPass {
    fn name(&self) -> &'static str {
        "domain-switch"
    }

    fn run(&self, program: &mut Program) -> Result<(), PassFailure> {
        let wrap_around = self.points == SwitchPoints::Privileged;
        for func in &mut program.functions {
            // Privileged (runtime) functions already run with the domain
            // managed by their caller in event mode; in Privileged mode
            // their bodies are exactly what we instrument.
            if !wrap_around && func.privileged {
                continue;
            }
            let old = std::mem::take(&mut func.body);
            let mut new = Vec::with_capacity(old.len() + 8);
            let mut i = 0;
            while i < old.len() {
                let node = old[i];
                if !self.points.matches(&node) {
                    new.push(node);
                    i += 1;
                    continue;
                }
                for inst in &self.sequences.open {
                    new.push(InstNode::privileged(*inst));
                }
                if wrap_around {
                    // Wrap the whole maximal run of consecutive privileged
                    // instructions with ONE open/close pair — a defense
                    // runtime sequence is a single instrumentation point,
                    // not one per instruction.
                    while i < old.len() && self.points.matches(&old[i]) {
                        new.push(old[i]);
                        i += 1;
                    }
                    for inst in &self.sequences.close {
                        new.push(InstNode::privileged(*inst));
                    }
                } else {
                    for inst in &self.sequences.close {
                        new.push(InstNode::privileged(*inst));
                    }
                    new.push(node);
                    i += 1;
                }
            }
            func.body = new;
        }
        Ok(())
    }
}

/// Counts instructions matching `pred` (test/bench helper).
pub fn count_insts(program: &Program, pred: impl Fn(&Inst) -> bool) -> usize {
    program
        .functions
        .iter()
        .flat_map(|f| f.body.iter())
        .filter(|n| pred(&n.inst))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::SafeRegionLayout;
    use memsentry_cpu::{Machine, Trap};
    use memsentry_ir::{verify, FuncId, FunctionBuilder, Reg};
    use memsentry_mmu::{PageFlags, Pkru, VirtAddr, PAGE_SIZE};

    fn call_heavy_program() -> Program {
        let mut p = Program::new();
        let mut main = FunctionBuilder::new("main");
        main.push(Inst::Call(FuncId(1)));
        main.push(Inst::Call(FuncId(1)));
        main.push(Inst::Halt);
        let mut leaf = FunctionBuilder::new("leaf");
        leaf.push(Inst::Nop);
        leaf.push(Inst::Ret);
        p.add_function(main.finish());
        p.add_function(leaf.finish());
        p
    }

    #[test]
    fn callret_mode_wraps_calls_and_rets() {
        let mut p = call_heavy_program();
        let layout = SafeRegionLayout::sensitive(64);
        DomainSwitchPass::new(SwitchPoints::CallRet, DomainSequences::mpk(&layout))
            .run(&mut p)
            .unwrap();
        verify(&p).unwrap();
        // 2 calls + 1 ret = 3 switch points, each open+close = 2 wrpkru.
        assert_eq!(count_insts(&p, |i| matches!(i, Inst::WrPkru { .. })), 6);
        // Program still runs.
        let mut m = Machine::new(p);
        m.run().expect_exit();
        assert_eq!(m.stats().wrpkrus, 6 + 2); // leaf called twice: its ret executes twice...
    }

    #[test]
    fn semantics_preserved_under_vmfunc_requires_vm() {
        let mut p = call_heavy_program();
        let layout = SafeRegionLayout::sensitive(64);
        DomainSwitchPass::new(SwitchPoints::CallRet, DomainSequences::vmfunc(&layout))
            .run(&mut p)
            .unwrap();
        // Without the Dune sandbox, vmfunc traps: deterministic failure,
        // not silent no-op.
        let mut m = Machine::new(p);
        assert!(matches!(m.run().expect_trap(), Trap::VmError { .. }));
    }

    #[test]
    fn privileged_mode_brackets_the_instruction() {
        let region = SafeRegionLayout::sensitive(PAGE_SIZE);
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::MovImm {
            dst: Reg::Rbx,
            imm: region.base,
        });
        b.push(Inst::MovImm {
            dst: Reg::Rsi,
            imm: 99,
        });
        b.push_privileged(Inst::Store {
            src: Reg::Rsi,
            addr: Reg::Rbx,
            offset: 0,
        });
        b.push_privileged(Inst::Load {
            dst: Reg::Rax,
            addr: Reg::Rbx,
            offset: 0,
        });
        b.push(Inst::Halt);
        p.add_function(b.finish());
        DomainSwitchPass::new(SwitchPoints::Privileged, DomainSequences::mpk(&region))
            .run(&mut p)
            .unwrap();
        verify(&p).unwrap();

        let mut m = Machine::new(p);
        m.space
            .map_region(VirtAddr(region.base), PAGE_SIZE, PageFlags::rw());
        m.space
            .pkey_mprotect(VirtAddr(region.base), PAGE_SIZE, region.pkey);
        m.space.pkru = Pkru::deny_key(region.pkey);
        // The privileged accesses succeed because the pass opens the
        // domain around them...
        assert_eq!(m.run().expect_exit(), 99);
        // ...and the domain is closed again afterwards.
        assert!(!m.space.pkru.permits(region.pkey, false));
    }

    #[test]
    fn unprivileged_access_to_pkey_region_still_faults() {
        let region = SafeRegionLayout::sensitive(PAGE_SIZE);
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::MovImm {
            dst: Reg::Rbx,
            imm: region.base,
        });
        b.push(Inst::Load {
            dst: Reg::Rax,
            addr: Reg::Rbx,
            offset: 0,
        });
        b.push(Inst::Halt);
        p.add_function(b.finish());
        DomainSwitchPass::new(SwitchPoints::Privileged, DomainSequences::mpk(&region))
            .run(&mut p)
            .unwrap();
        let mut m = Machine::new(p);
        m.space
            .map_region(VirtAddr(region.base), PAGE_SIZE, PageFlags::rw());
        m.space
            .pkey_mprotect(VirtAddr(region.base), PAGE_SIZE, region.pkey);
        m.space.pkru = Pkru::deny_key(region.pkey);
        assert!(matches!(
            m.run().expect_trap(),
            Trap::Mmu(memsentry_mmu::Fault::PkeyDenied { .. })
        ));
    }

    #[test]
    fn syscall_mode_only_touches_syscalls() {
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::Call(FuncId(0)));
        b.push(Inst::Syscall { nr: 2 });
        b.push(Inst::Halt);
        p.add_function(b.finish());
        let layout = SafeRegionLayout::sensitive(64);
        DomainSwitchPass::new(SwitchPoints::Syscall, DomainSequences::mpk(&layout))
            .run(&mut p)
            .unwrap();
        assert_eq!(count_insts(&p, |i| matches!(i, Inst::WrPkru { .. })), 2);
    }

    #[test]
    fn allocator_mode_wraps_malloc_and_free() {
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::MovImm {
            dst: Reg::Rdi,
            imm: 32,
        });
        b.push(Inst::Alloc { size: Reg::Rdi });
        b.push(Inst::Free { ptr: Reg::Rax });
        b.push(Inst::Halt);
        p.add_function(b.finish());
        let layout = SafeRegionLayout::sensitive(64);
        DomainSwitchPass::new(SwitchPoints::AllocatorCall, DomainSequences::mpk(&layout))
            .run(&mut p)
            .unwrap();
        assert_eq!(count_insts(&p, |i| matches!(i, Inst::WrPkru { .. })), 4);
    }

    #[test]
    fn indirect_mode_skips_direct_calls() {
        let mut p = call_heavy_program();
        let layout = SafeRegionLayout::sensitive(64);
        DomainSwitchPass::new(SwitchPoints::IndirectBranch, DomainSequences::mpk(&layout))
            .run(&mut p)
            .unwrap();
        assert_eq!(count_insts(&p, |i| matches!(i, Inst::WrPkru { .. })), 0);
    }
}
