//! The pass manager.
//!
//! Runs a pipeline of passes over a program, re-verifying structural
//! invariants after each one so a broken transformation is reported with
//! the name of the pass that produced it.

use memsentry_ir::{verify, Program, VerifyError};

/// A program transformation.
pub trait Pass {
    /// Human-readable pass name.
    fn name(&self) -> &'static str;
    /// Transforms the program in place.
    fn run(&self, program: &mut Program);
}

/// A verification failure attributed to the pass that caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    /// The offending pass.
    pub pass: &'static str,
    /// What the verifier found.
    pub error: VerifyError,
}

impl core::fmt::Display for PassError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pass '{}' broke the program: {}", self.pass, self.error)
    }
}

impl std::error::Error for PassError {}

/// An ordered pipeline of passes.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a pass.
    pub fn add(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Runs the pipeline, verifying after every pass (and once up front).
    pub fn run(&self, program: &mut Program) -> Result<(), PassError> {
        verify(program).map_err(|error| PassError {
            pass: "<input>",
            error,
        })?;
        for pass in &self.passes {
            pass.run(program);
            verify(program).map_err(|error| PassError {
                pass: pass.name(),
                error,
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsentry_ir::{FunctionBuilder, Inst};

    struct AppendNop;
    impl Pass for AppendNop {
        fn name(&self) -> &'static str {
            "append-nop"
        }
        fn run(&self, program: &mut Program) {
            for f in &mut program.functions {
                f.body.insert(0, Inst::Nop.into());
            }
        }
    }

    struct Truncate;
    impl Pass for Truncate {
        fn name(&self) -> &'static str {
            "truncate"
        }
        fn run(&self, program: &mut Program) {
            for f in &mut program.functions {
                f.body.pop();
            }
        }
    }

    fn program() -> Program {
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::Halt);
        p.add_function(b.finish());
        p
    }

    #[test]
    fn pipeline_runs_in_order() {
        let mut pm = PassManager::new();
        pm.add(Box::new(AppendNop)).add(Box::new(AppendNop));
        let mut p = program();
        pm.run(&mut p).unwrap();
        assert_eq!(p.functions[0].body.len(), 3);
    }

    #[test]
    fn broken_pass_is_named() {
        let mut pm = PassManager::new();
        pm.add(Box::new(Truncate)); // removes the Halt -> falls off end
        let mut p = program();
        let err = pm.run(&mut p).unwrap_err();
        assert_eq!(err.pass, "truncate");
    }

    #[test]
    fn invalid_input_is_reported_before_any_pass() {
        let mut pm = PassManager::new();
        pm.add(Box::new(AppendNop));
        let mut p = Program::new();
        let err = pm.run(&mut p).unwrap_err();
        assert_eq!(err.pass, "<input>");
    }
}
