//! The pass manager.
//!
//! Runs a pipeline of passes over a program, re-verifying structural
//! invariants after each one so a broken transformation is reported with
//! the name of the pass that produced it. With [`PassManager::with_check`]
//! the pipeline additionally runs the `memsentry-check` isolation
//! soundness analysis on the final program, turning "the instrumentation
//! claims to protect the region" into a machine-checked post-condition.

use memsentry_check::{check_program, CheckPolicy, CheckReport};
use memsentry_ir::{verify, Program, Reg, VerifyError};

/// Name under which post-pipeline checker findings are attributed.
pub const CHECK_STAGE: &str = "isolation-check";

/// A failure inside a pass's own transformation logic (as opposed to the
/// structural verifier catching its output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PassFailure {
    /// The instrumentation needed a scratch register but every candidate
    /// in the pool is reserved by the instruction being rewritten.
    NoScratchRegister {
        /// The function being instrumented.
        func: String,
        /// Index of the instruction that could not be rewritten.
        index: usize,
        /// The registers that had to be avoided.
        avoid: Vec<Reg>,
    },
    /// The pass does not apply to the given configuration.
    Unsupported {
        /// Why the pass cannot run.
        reason: String,
    },
}

impl core::fmt::Display for PassFailure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PassFailure::NoScratchRegister { func, index, avoid } => write!(
                f,
                "no scratch register free in <{func}> at instruction {index} (avoiding {avoid:?})"
            ),
            PassFailure::Unsupported { reason } => write!(f, "{reason}"),
        }
    }
}

impl std::error::Error for PassFailure {}

/// A program transformation.
pub trait Pass {
    /// Human-readable pass name.
    fn name(&self) -> &'static str;
    /// Transforms the program in place.
    fn run(&self, program: &mut Program) -> Result<(), PassFailure>;
}

/// What went wrong in a pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PassErrorKind {
    /// The structural verifier rejected the stage's output (or the
    /// pipeline's input, attributed to [`PassError::pass`] `"<input>"`).
    Verify(VerifyError),
    /// The pass itself reported a typed failure.
    Failed(PassFailure),
    /// The post-pipeline isolation checker found violations.
    Check(CheckReport),
}

impl core::fmt::Display for PassErrorKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PassErrorKind::Verify(e) => write!(f, "broke the program: {e}"),
            PassErrorKind::Failed(e) => write!(f, "failed: {e}"),
            PassErrorKind::Check(report) => {
                write!(f, "left unsound instrumentation:\n{report}")
            }
        }
    }
}

/// A pipeline failure attributed to the stage that caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    /// The offending pass (or [`CHECK_STAGE`] / `"<input>"`).
    pub pass: &'static str,
    /// What the stage reported.
    pub kind: PassErrorKind,
}

impl core::fmt::Display for PassError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pass '{}' {}", self.pass, self.kind)
    }
}

impl std::error::Error for PassError {}

/// An ordered pipeline of passes.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    check: Option<CheckPolicy>,
}

impl PassManager {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a pass.
    pub fn add(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Enables the post-pipeline isolation soundness check. Findings are
    /// reported as a [`PassErrorKind::Check`] attributed to
    /// [`CHECK_STAGE`].
    pub fn with_check(&mut self, policy: CheckPolicy) -> &mut Self {
        self.check = Some(policy);
        self
    }

    /// Runs the pipeline, verifying after every pass (and once up front),
    /// then running the isolation checker if enabled.
    pub fn run(&self, program: &mut Program) -> Result<(), PassError> {
        verify(program).map_err(|error| PassError {
            pass: "<input>",
            kind: PassErrorKind::Verify(error),
        })?;
        for pass in &self.passes {
            pass.run(program).map_err(|failure| PassError {
                pass: pass.name(),
                kind: PassErrorKind::Failed(failure),
            })?;
            verify(program).map_err(|error| PassError {
                pass: pass.name(),
                kind: PassErrorKind::Verify(error),
            })?;
        }
        if let Some(policy) = &self.check {
            let report = check_program(program, policy);
            if !report.is_clean() {
                return Err(PassError {
                    pass: CHECK_STAGE,
                    kind: PassErrorKind::Check(report),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsentry_check::FindingKind;
    use memsentry_ir::{FunctionBuilder, Inst};

    struct AppendNop;
    impl Pass for AppendNop {
        fn name(&self) -> &'static str {
            "append-nop"
        }
        fn run(&self, program: &mut Program) -> Result<(), PassFailure> {
            for f in &mut program.functions {
                f.body.insert(0, Inst::Nop.into());
            }
            Ok(())
        }
    }

    struct Truncate;
    impl Pass for Truncate {
        fn name(&self) -> &'static str {
            "truncate"
        }
        fn run(&self, program: &mut Program) -> Result<(), PassFailure> {
            for f in &mut program.functions {
                f.body.pop();
            }
            Ok(())
        }
    }

    struct StrayGadget;
    impl Pass for StrayGadget {
        fn name(&self) -> &'static str {
            "stray-gadget"
        }
        fn run(&self, program: &mut Program) -> Result<(), PassFailure> {
            let f = &mut program.functions[0];
            f.body.insert(
                0,
                Inst::WrPkru {
                    src: memsentry_ir::Reg::Rax,
                }
                .into(),
            );
            Ok(())
        }
    }

    struct GiveUp;
    impl Pass for GiveUp {
        fn name(&self) -> &'static str {
            "give-up"
        }
        fn run(&self, _program: &mut Program) -> Result<(), PassFailure> {
            Err(PassFailure::Unsupported {
                reason: "not today".into(),
            })
        }
    }

    fn program() -> Program {
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::Halt);
        p.add_function(b.finish());
        p
    }

    #[test]
    fn pipeline_runs_in_order() {
        let mut pm = PassManager::new();
        pm.add(Box::new(AppendNop)).add(Box::new(AppendNop));
        let mut p = program();
        pm.run(&mut p).unwrap();
        assert_eq!(p.functions[0].body.len(), 3);
    }

    #[test]
    fn broken_pass_is_named() {
        let mut pm = PassManager::new();
        pm.add(Box::new(Truncate)); // removes the Halt -> falls off end
        let mut p = program();
        let err = pm.run(&mut p).unwrap_err();
        assert_eq!(err.pass, "truncate");
        assert!(matches!(err.kind, PassErrorKind::Verify(_)));
    }

    #[test]
    fn invalid_input_is_reported_before_any_pass() {
        let mut pm = PassManager::new();
        pm.add(Box::new(AppendNop));
        let mut p = Program::new();
        let err = pm.run(&mut p).unwrap_err();
        assert_eq!(err.pass, "<input>");
    }

    #[test]
    fn failing_pass_surfaces_its_typed_error() {
        let mut pm = PassManager::new();
        pm.add(Box::new(GiveUp));
        let mut p = program();
        let err = pm.run(&mut p).unwrap_err();
        assert_eq!(err.pass, "give-up");
        assert!(matches!(
            err.kind,
            PassErrorKind::Failed(PassFailure::Unsupported { .. })
        ));
    }

    #[test]
    fn check_stage_flags_unsound_output() {
        let mut pm = PassManager::new();
        pm.add(Box::new(StrayGadget))
            .with_check(CheckPolicy::universal());
        let mut p = program();
        let err = pm.run(&mut p).unwrap_err();
        assert_eq!(err.pass, CHECK_STAGE);
        let PassErrorKind::Check(report) = err.kind else {
            panic!("expected check findings, got {:?}", err.kind);
        };
        assert_eq!(report.findings[0].kind, FindingKind::StrayDomainSwitch);
    }

    #[test]
    fn check_stage_passes_clean_pipelines() {
        let mut pm = PassManager::new();
        pm.add(Box::new(AppendNop))
            .with_check(CheckPolicy::universal());
        let mut p = program();
        pm.run(&mut p).unwrap();
    }
}
