//! Canonical domain open/close instruction sequences.
//!
//! Each domain-based technique toggles the sensitive domain with a short
//! instruction sequence (paper §3.1/§5). These builders produce exactly
//! those sequences; the [`crate::domain::DomainSwitchPass`] wraps them
//! around the instrumentation points.

use memsentry_cpu::kernel::nr;
use memsentry_ir::{AluOp, Inst, Reg};

use crate::layout::SafeRegionLayout;

/// An open/close pair of instruction sequences.
#[derive(Debug, Clone, Default)]
pub struct DomainSequences {
    /// Instructions that make the sensitive domain accessible.
    pub open: Vec<Inst>,
    /// Instructions that close it again.
    pub close: Vec<Inst>,
}

impl DomainSequences {
    /// MPK: `rdpkru` / clear the region's AD+WD bits / `wrpkru` /
    /// `mfence`, and the reverse to close (paper §5.2).
    ///
    /// Architecturally the sequence clobbers `rax`/`rcx`/`rdx`; the paper
    /// notes LLVM's register allocator works around the clobbers (at some
    /// spill cost). The IR models the post-allocation result by staging
    /// `pkru` through a scratch register.
    pub fn mpk(layout: &SafeRegionLayout) -> Self {
        let bits = 0b11u64 << (2 * layout.pkey as u32);
        Self {
            open: vec![
                Inst::RdPkru { dst: Reg::R9 },
                Inst::AluImm {
                    op: AluOp::And,
                    dst: Reg::R9,
                    imm: !bits,
                },
                Inst::WrPkru { src: Reg::R9 },
                Inst::MFence,
            ],
            close: vec![
                Inst::RdPkru { dst: Reg::R9 },
                Inst::AluImm {
                    op: AluOp::Or,
                    dst: Reg::R9,
                    imm: bits,
                },
                Inst::WrPkru { src: Reg::R9 },
                Inst::MFence,
            ],
        }
    }

    /// MPK without the `mfence` (ablation): what the switch would cost if
    /// `wrpkru`'s own serialization were the only barrier. Unsafe against
    /// speculative reordering of the protected accesses; benchmark-only.
    pub fn mpk_unfenced(layout: &SafeRegionLayout) -> Self {
        let mut s = Self::mpk(layout);
        s.open.retain(|i| !matches!(i, Inst::MFence));
        s.close.retain(|i| !matches!(i, Inst::MFence));
        s
    }

    /// crypt with the round keys *pinned* in `xmm` (ablation): the CCFI
    /// approach the paper rejects (§5.3) — no per-open `ymm` reload and no
    /// `aesimc`, at the cost of reserving xmm registers system-wide
    /// (recompiling every library). Benchmark-only.
    pub fn crypt_pinned_keys(layout: &SafeRegionLayout) -> Self {
        let mut s = Self::crypt(layout);
        s.open
            .retain(|i| !matches!(i, Inst::YmmToXmm { .. } | Inst::AesImc));
        s.close.retain(|i| !matches!(i, Inst::YmmToXmm { .. }));
        s
    }

    /// VMFUNC: switch to the secure EPT and back (paper §5.1).
    pub fn vmfunc(layout: &SafeRegionLayout) -> Self {
        Self {
            open: vec![Inst::VmFunc {
                eptp: layout.secure_ept,
            }],
            close: vec![Inst::VmFunc { eptp: 0 }],
        }
    }

    /// crypt: stage round keys from `ymm` into `xmm`, decrypt the region
    /// in place; re-encrypt on close (paper §5.3). Clobbers `r10`.
    ///
    /// Only the *encryption* round keys fit in the `ymm` upper halves;
    /// decryption derives the equivalent-inverse-cipher keys with
    /// `aesimc` on every open (Table 4: "AES imc (9 rounds): 71 cycles"
    /// — the paper: "calculating all required keys for decryption is far
    /// more costly ... the initialization cost per block will thus be
    /// higher for decryption").
    pub fn crypt(layout: &SafeRegionLayout) -> Self {
        let chunks = layout.chunks();
        Self {
            open: vec![
                Inst::YmmToXmm { count: 11 },
                Inst::AesImc,
                Inst::MovImm {
                    dst: Reg::R10,
                    imm: layout.base,
                },
                Inst::AesRegion {
                    base: Reg::R10,
                    chunks,
                    decrypt: true,
                },
            ],
            // The close re-encrypts with the keys still staged in xmm
            // from the open; no reload is needed.
            close: vec![
                Inst::MovImm {
                    dst: Reg::R10,
                    imm: layout.base,
                },
                Inst::AesRegion {
                    base: Reg::R10,
                    chunks,
                    decrypt: false,
                },
            ],
        }
    }

    /// SGX: an ECALL transition in and out of the enclave.
    pub fn sgx() -> Self {
        Self {
            open: vec![Inst::SgxEnter],
            close: vec![Inst::SgxExit],
        }
    }

    /// Page-table switching (extension): `switch_view(secure)` to open,
    /// `switch_view(0)` to close — one syscall each, with PCID keeping the
    /// TLB warm. Clobbers `rdi`/`rax`.
    pub fn page_table_switch(layout: &SafeRegionLayout) -> Self {
        let call = |view: u64| {
            vec![
                Inst::MovImm {
                    dst: Reg::Rdi,
                    imm: view,
                },
                Inst::Syscall {
                    nr: nr::SWITCH_VIEW,
                },
            ]
        };
        Self {
            open: call(layout.secure_ept as u64),
            close: call(0),
        }
    }

    /// Page-table switching without PCID (ablation): every switch flushes
    /// the TLB, so the cost shows up as downstream page-walk misses.
    pub fn page_table_switch_no_pcid(layout: &SafeRegionLayout) -> Self {
        let call = |view: u64| {
            vec![
                Inst::MovImm {
                    dst: Reg::Rdi,
                    imm: view,
                },
                Inst::Syscall {
                    nr: nr::SWITCH_VIEW_FLUSH,
                },
            ]
        };
        Self {
            open: call(layout.secure_ept as u64),
            close: call(0),
        }
    }

    /// The POSIX baseline: `mprotect` the region RW to open, PROT_NONE to
    /// close (the 20-50x overhead strategy of paper §1). Clobbers
    /// `rdi`/`rsi`/`rdx`/`rax`.
    pub fn mprotect(layout: &SafeRegionLayout) -> Self {
        let call = |prot: u64| {
            vec![
                Inst::MovImm {
                    dst: Reg::Rdi,
                    imm: layout.base,
                },
                Inst::MovImm {
                    dst: Reg::Rsi,
                    imm: layout.len,
                },
                Inst::MovImm {
                    dst: Reg::Rdx,
                    imm: prot,
                },
                Inst::Syscall { nr: nr::MPROTECT },
            ]
        };
        Self {
            open: call(2),  // ReadWrite
            close: call(0), // None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> SafeRegionLayout {
        SafeRegionLayout::sensitive(64)
    }

    #[test]
    fn mpk_sequences_toggle_the_right_bits() {
        let s = DomainSequences::mpk(&layout());
        assert!(matches!(s.open[0], Inst::RdPkru { .. }));
        match (s.open[1], s.close[1]) {
            (
                Inst::AluImm {
                    op: AluOp::And,
                    imm: and_imm,
                    ..
                },
                Inst::AluImm {
                    op: AluOp::Or,
                    imm: or_imm,
                    ..
                },
            ) => {
                assert_eq!(or_imm, 0b11 << 2, "pkey 1 bits");
                assert_eq!(and_imm, !or_imm);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(s.open[3], Inst::MFence));
        assert!(matches!(s.close[3], Inst::MFence));
    }

    #[test]
    fn vmfunc_sequences_switch_to_secure_and_back() {
        let s = DomainSequences::vmfunc(&layout());
        assert_eq!(s.open, vec![Inst::VmFunc { eptp: 1 }]);
        assert_eq!(s.close, vec![Inst::VmFunc { eptp: 0 }]);
    }

    #[test]
    fn crypt_sequences_decrypt_then_reencrypt() {
        let s = DomainSequences::crypt(&layout());
        assert!(matches!(s.open[1], Inst::AesImc));
        assert!(matches!(
            s.open[3],
            Inst::AesRegion {
                decrypt: true,
                chunks: 4,
                ..
            }
        ));
        assert!(matches!(
            s.close[1],
            Inst::AesRegion {
                decrypt: false,
                chunks: 4,
                ..
            }
        ));
        assert!(matches!(s.open[0], Inst::YmmToXmm { count: 11 }));
    }

    #[test]
    fn mprotect_sequences_are_syscalls() {
        let s = DomainSequences::mprotect(&layout());
        assert!(matches!(s.open[3], Inst::Syscall { nr: 10 }));
        assert!(matches!(s.close[3], Inst::Syscall { nr: 10 }));
        // Open grants RW (2), close revokes (0).
        assert!(matches!(s.open[2], Inst::MovImm { imm: 2, .. }));
        assert!(matches!(s.close[2], Inst::MovImm { imm: 0, .. }));
    }

    #[test]
    fn mpk_unfenced_drops_only_the_fences() {
        let full = DomainSequences::mpk(&layout());
        let lean = DomainSequences::mpk_unfenced(&layout());
        assert_eq!(lean.open.len(), full.open.len() - 1);
        assert!(lean.open.iter().all(|i| !matches!(i, Inst::MFence)));
        assert!(lean.close.iter().any(|i| matches!(i, Inst::WrPkru { .. })));
    }

    #[test]
    fn crypt_pinned_keys_drops_reload_and_imc() {
        let lean = DomainSequences::crypt_pinned_keys(&layout());
        assert!(lean
            .open
            .iter()
            .all(|i| !matches!(i, Inst::YmmToXmm { .. } | Inst::AesImc)));
        assert!(lean
            .open
            .iter()
            .any(|i| matches!(i, Inst::AesRegion { decrypt: true, .. })));
    }

    #[test]
    fn sgx_sequences_are_transitions() {
        let s = DomainSequences::sgx();
        assert_eq!(s.open, vec![Inst::SgxEnter]);
        assert_eq!(s.close, vec![Inst::SgxExit]);
    }
}
