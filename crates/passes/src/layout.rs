//! Safe-region layout description shared by the passes.

use memsentry_mmu::SENSITIVE_BASE;

/// Where the safe region lives and how the techniques address it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SafeRegionLayout {
    /// Base virtual address of the region.
    pub base: u64,
    /// Region length in bytes.
    pub len: u64,
    /// MPK protection key assigned to the region's pages.
    pub pkey: u8,
    /// EPTP-list index of the secure EPT holding the region's mappings.
    pub secure_ept: u32,
}

impl SafeRegionLayout {
    /// A layout at the canonical spot in the sensitive partition.
    pub fn sensitive(len: u64) -> Self {
        Self {
            base: SENSITIVE_BASE,
            len,
            pkey: 1,
            secure_ept: 1,
        }
    }

    /// Number of 16-byte chunks the crypt technique processes per switch.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a multiple of 16; the safe-region
    /// allocator always rounds lengths up.
    pub fn chunks(&self) -> u32 {
        assert!(
            self.len.is_multiple_of(16),
            "safe region length must be 16-aligned"
        );
        (self.len / 16) as u32
    }

    /// Whether `va` falls inside the region.
    pub fn contains(&self, va: u64) -> bool {
        va >= self.base && va < self.base + self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitive_layout_sits_at_64tb() {
        let l = SafeRegionLayout::sensitive(4096);
        assert_eq!(l.base, 64 << 40);
        assert!(l.contains(l.base));
        assert!(l.contains(l.base + 4095));
        assert!(!l.contains(l.base + 4096));
        assert!(!l.contains(l.base - 1));
    }

    #[test]
    fn chunk_count() {
        assert_eq!(SafeRegionLayout::sensitive(16).chunks(), 1);
        assert_eq!(SafeRegionLayout::sensitive(1024).chunks(), 64);
    }

    #[test]
    #[should_panic(expected = "16-aligned")]
    fn unaligned_length_panics() {
        SafeRegionLayout::sensitive(17).chunks();
    }
}
