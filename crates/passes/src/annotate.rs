//! Automatic annotation of defense runtime libraries.
//!
//! Paper §3, "Usage": "For the general case where defense passes insert
//! calls to functions at certain points, these functions should be
//! annotated so they can access the safe region. For the common case
//! where these are contained in a static library, we have included a pass
//! to automatically create these annotations."
//!
//! [`AnnotateLibraryPass`] is that pass: every function whose name starts
//! with the library prefix is marked privileged (whole-function
//! `saferegion_access`), so a defense can link its runtime and get the
//! annotations for free.

use memsentry_ir::{Inst, Program};

use crate::manager::{Pass, PassFailure};

/// Marks all functions with a given name prefix as privileged.
#[derive(Debug, Clone)]
pub struct AnnotateLibraryPass {
    /// The library's naming prefix (e.g. `"rt_"`).
    pub prefix: String,
}

impl AnnotateLibraryPass {
    /// Creates the pass for `prefix`.
    pub fn new(prefix: impl Into<String>) -> Self {
        Self {
            prefix: prefix.into(),
        }
    }
}

impl Pass for AnnotateLibraryPass {
    fn name(&self) -> &'static str {
        "annotate-library"
    }

    fn run(&self, program: &mut Program) -> Result<(), PassFailure> {
        for func in &mut program.functions {
            if func.name.starts_with(&self.prefix) {
                func.privileged = true;
                for node in &mut func.body {
                    // Control transfers never touch the region and must
                    // not end up inside an open/close window (a wrapped
                    // `ret` would leave the close sequence unreachable).
                    let control = matches!(
                        node.inst,
                        Inst::Ret
                            | Inst::Halt
                            | Inst::Jmp(_)
                            | Inst::JmpIf { .. }
                            | Inst::Call(_)
                            | Inst::CallIndirect { .. }
                            | Inst::Label(_)
                    );
                    node.privileged = !control;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsentry_cpu::{Machine, Trap};
    use memsentry_ir::{verify, FuncId, FunctionBuilder, Inst, Reg};
    use memsentry_mmu::Fault;

    use crate::domain::{DomainSwitchPass, SwitchPoints};
    use crate::layout::SafeRegionLayout;
    use crate::sequences::DomainSequences;

    /// main calls rt_store then rt_load; the runtime functions touch the
    /// region without any hand annotations.
    fn program(region_base: u64) -> Program {
        let mut p = Program::new();
        let mut main = FunctionBuilder::new("main");
        main.push(Inst::MovImm {
            dst: Reg::Rbx,
            imm: region_base,
        });
        main.push(Inst::MovImm {
            dst: Reg::R12,
            imm: 9,
        });
        main.push(Inst::Call(FuncId(1)));
        main.push(Inst::Call(FuncId(2)));
        main.push(Inst::Mov {
            dst: Reg::Rax,
            src: Reg::R8,
        });
        main.push(Inst::Halt);
        p.add_function(main.finish());
        let mut store = FunctionBuilder::new("rt_store");
        store.push(Inst::Store {
            src: Reg::R12,
            addr: Reg::Rbx,
            offset: 0,
        });
        store.push(Inst::Ret);
        p.add_function(store.finish());
        let mut load = FunctionBuilder::new("rt_load");
        load.push(Inst::Load {
            dst: Reg::R8,
            addr: Reg::Rbx,
            offset: 0,
        });
        load.push(Inst::Ret);
        p.add_function(load.finish());
        p
    }

    #[test]
    fn prefix_functions_become_privileged() {
        let mut p = program(0);
        AnnotateLibraryPass::new("rt_").run(&mut p).unwrap();
        assert!(!p.functions[0].privileged);
        assert!(p.functions[1].privileged);
        assert!(p.functions[2].privileged);
        // Data instructions are privileged; the terminator is not.
        assert!(p.functions[1].body[0].privileged);
        assert!(!p.functions[1].body[1].privileged);
        verify(&p).unwrap();
    }

    #[test]
    fn annotated_library_composes_with_domain_switching() {
        // The full §3 "Usage" flow: auto-annotate, then wrap the
        // privileged runtime bodies with MPK switches.
        let region = SafeRegionLayout::sensitive(64);
        let mut p = program(region.base);
        AnnotateLibraryPass::new("rt_").run(&mut p).unwrap();
        DomainSwitchPass::new(SwitchPoints::Privileged, DomainSequences::mpk(&region))
            .run(&mut p)
            .unwrap();
        verify(&p).unwrap();
        let mut m = Machine::new(p);
        m.space.map_region(
            memsentry_mmu::VirtAddr(region.base),
            memsentry_mmu::PAGE_SIZE,
            memsentry_mmu::PageFlags::rw(),
        );
        m.space.pkey_mprotect(
            memsentry_mmu::VirtAddr(region.base),
            memsentry_mmu::PAGE_SIZE,
            region.pkey,
        );
        m.space.pkru = memsentry_mmu::Pkru::deny_key(region.pkey);
        assert_eq!(m.run().expect_exit(), 9);
    }

    #[test]
    fn unannotated_program_faults_where_annotated_succeeds() {
        let region = SafeRegionLayout::sensitive(64);
        let mut p = program(region.base);
        // No annotation pass: the runtime accesses stay unprivileged.
        DomainSwitchPass::new(SwitchPoints::Privileged, DomainSequences::mpk(&region))
            .run(&mut p)
            .unwrap();
        let mut m = Machine::new(p);
        m.space.map_region(
            memsentry_mmu::VirtAddr(region.base),
            memsentry_mmu::PAGE_SIZE,
            memsentry_mmu::PageFlags::rw(),
        );
        m.space.pkey_mprotect(
            memsentry_mmu::VirtAddr(region.base),
            memsentry_mmu::PAGE_SIZE,
            region.pkey,
        );
        m.space.pkru = memsentry_mmu::Pkru::deny_key(region.pkey);
        assert!(matches!(
            m.run().expect_trap(),
            Trap::Mmu(Fault::PkeyDenied { .. })
        ));
    }
}
