#![warn(missing_docs)]

//! MemSentry's instrumentation passes.
//!
//! The paper implements MemSentry as LLVM passes that run after a defense's
//! own passes (Figure 1). Given (a) the safe region, (b) the
//! instrumentation points, and (c) the chosen isolation technique, the
//! passes transform the program:
//!
//! * [`address`] — **address-based** isolation (paper §3.2, Figure 2):
//!   every non-privileged load and/or store is split into `lea` + check +
//!   access, where the check is either the SFI `and`-mask or a single MPX
//!   `bndcu` against the 64 TB partition boundary.
//! * [`domain`] — **domain-based** isolation (paper §3.1): open/close
//!   instruction sequences are wrapped around the instrumentation points
//!   (call/ret, indirect branches, system calls, allocator calls, or
//!   explicitly annotated privileged instructions).
//! * [`sequences`] — the canonical open/close sequences for MPK, VMFUNC,
//!   crypt, SGX, and the `mprotect` baseline.
//! * [`pointsto`] — static (conservative) and dynamic (trace-based,
//!   PIN-like) points-to analyses for protecting arbitrary program data
//!   (paper §5.5).
//! * [`manager`] — a pass manager that re-verifies the program after every
//!   pass, and can run the `memsentry-check` isolation soundness analysis
//!   on the pipeline's final output ([`PassManager::with_check`]).

pub mod address;
pub mod annotate;
pub mod domain;
pub mod layout;
pub mod manager;
pub mod pointsto;
pub mod sequences;

pub use address::{AddressBasedPass, AddressKind, InstrumentMode};
pub use annotate::AnnotateLibraryPass;
pub use domain::{DomainSwitchPass, SwitchPoints};
pub use layout::SafeRegionLayout;
pub use manager::{Pass, PassError, PassErrorKind, PassFailure, PassManager, CHECK_STAGE};
pub use pointsto::{DynamicPointsTo, StaticPointsTo};
pub use sequences::DomainSequences;
