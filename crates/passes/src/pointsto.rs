//! Points-to analyses for protecting arbitrary program data.
//!
//! Most defenses define their instrumentation points syntactically
//! (call/ret, branches, allocator calls), but protecting in-program data
//! such as private keys needs to know *which instructions may touch the
//! data* (paper §5.5). Two analyses are provided:
//!
//! * [`StaticPointsTo`] — a conservative, flow-insensitive, DSA-like
//!   analysis. Like the paper observes of LLVM's DSA, it over-approximates
//!   heavily (any loaded pointer is assumed to possibly point at the
//!   region), which is exactly the behaviour the dynamic analysis exists
//!   to contrast with.
//! * [`DynamicPointsTo`] — the PIN-like trace-based analysis: run the
//!   program, record which instructions actually accessed the region, and
//!   mark those privileged. Under-approximates on unseen inputs, as the
//!   paper cautions.

use std::collections::HashSet;

use memsentry_cpu::machine::AccessTracer;
use memsentry_ir::{CodeAddr, FuncId, Inst, Program, Reg};

use crate::layout::SafeRegionLayout;

/// A static may-access analysis over one program.
#[derive(Debug, Clone, Copy)]
pub struct StaticPointsTo {
    /// The region being protected.
    pub layout: SafeRegionLayout,
}

impl StaticPointsTo {
    /// Returns the set of `(function, instruction)` sites that **may**
    /// access the region, conservatively.
    pub fn may_access(&self, program: &Program) -> HashSet<(FuncId, u32)> {
        let mut result = HashSet::new();
        for (fi, func) in program.functions.iter().enumerate() {
            // Flow-insensitive register taint: a register is tainted if any
            // instruction in the function can make it region-pointing.
            // Iterate to a fixpoint (bounded by the register count).
            let mut tainted: HashSet<Reg> = HashSet::new();
            loop {
                let before = tainted.len();
                for node in &func.body {
                    match node.inst {
                        Inst::MovImm { dst, imm } if self.layout.contains(imm) => {
                            tainted.insert(dst);
                        }
                        Inst::Mov { dst, src } if tainted.contains(&src) => {
                            tainted.insert(dst);
                        }
                        Inst::Lea { dst, base, .. } if tainted.contains(&base) => {
                            tainted.insert(dst);
                        }
                        Inst::AluReg { dst, src, .. } if tainted.contains(&src) => {
                            tainted.insert(dst);
                        }
                        // The conservative heart of DSA-likeness: any value
                        // loaded from memory may be a pointer to the region.
                        Inst::Load { dst, .. } => {
                            tainted.insert(dst);
                        }
                        _ => {}
                    }
                }
                if tainted.len() == before {
                    break;
                }
            }
            for (ii, node) in func.body.iter().enumerate() {
                let addr = match node.inst {
                    Inst::Load { addr, .. } => Some(addr),
                    Inst::Store { addr, .. } => Some(addr),
                    _ => None,
                };
                if let Some(addr) = addr {
                    if tainted.contains(&addr) {
                        result.insert((FuncId(fi as u32), ii as u32));
                    }
                }
            }
        }
        result
    }

    /// Fraction of memory accesses flagged by the analysis (1.0 = every
    /// access; the paper found DSA "often yielding undesirable results
    /// where most memory accesses are classified" as sensitive).
    pub fn flagged_fraction(&self, program: &Program) -> f64 {
        let flagged = self.may_access(program).len();
        let total = program
            .functions
            .iter()
            .flat_map(|f| f.body.iter())
            .filter(|n| n.inst.is_load() || n.inst.is_store())
            .count();
        if total == 0 {
            0.0
        } else {
            flagged as f64 / total as f64
        }
    }
}

/// The PIN-like dynamic analysis: install as the machine's tracer, run the
/// program on representative inputs, then mark the observed accessors.
#[derive(Debug)]
pub struct DynamicPointsTo {
    layout: SafeRegionLayout,
    hits: HashSet<(u32, u32)>,
    accesses: u64,
}

impl DynamicPointsTo {
    /// Creates a tracer for `layout`.
    pub fn new(layout: SafeRegionLayout) -> Self {
        Self {
            layout,
            hits: HashSet::new(),
            accesses: 0,
        }
    }

    /// Sites observed touching the region.
    pub fn observed(&self) -> &HashSet<(u32, u32)> {
        &self.hits
    }

    /// Total accesses observed (hit or not).
    pub fn total_accesses(&self) -> u64 {
        self.accesses
    }

    /// Marks every observed accessor privileged in `program`.
    ///
    /// Only valid on the same (uninstrumented) program the trace was
    /// collected from — instruction indices must still line up.
    pub fn mark_privileged(&self, program: &mut Program) {
        for &(f, i) in &self.hits {
            if let Some(node) = program
                .functions
                .get_mut(f as usize)
                .and_then(|func| func.body.get_mut(i as usize))
            {
                node.privileged = true;
            }
        }
    }
}

impl AccessTracer for DynamicPointsTo {
    fn record(&mut self, at: CodeAddr, _is_store: bool, va: u64) {
        self.accesses += 1;
        if self.layout.contains(va) {
            self.hits.insert((at.func.0, at.index));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsentry_cpu::Machine;
    use memsentry_ir::FunctionBuilder;
    use memsentry_mmu::{PageFlags, VirtAddr, PAGE_SIZE};

    fn layout() -> SafeRegionLayout {
        SafeRegionLayout::sensitive(PAGE_SIZE)
    }

    /// main: one access to the region via an immediate pointer, one access
    /// to ordinary data via a separate register.
    fn two_access_program(region_base: u64) -> Program {
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::MovImm {
            dst: Reg::Rbx,
            imm: region_base,
        });
        b.push(Inst::Store {
            src: Reg::Rbx,
            addr: Reg::Rbx,
            offset: 0,
        }); // idx 1: region access
        b.push(Inst::MovImm {
            dst: Reg::Rcx,
            imm: 0x10_0000,
        });
        b.push(Inst::Store {
            src: Reg::Rcx,
            addr: Reg::Rcx,
            offset: 0,
        }); // idx 3: ordinary access
        b.push(Inst::Halt);
        p.add_function(b.finish());
        p
    }

    #[test]
    fn static_analysis_flags_the_immediate_region_pointer() {
        let l = layout();
        let p = two_access_program(l.base);
        let flagged = StaticPointsTo { layout: l }.may_access(&p);
        assert!(flagged.contains(&(FuncId(0), 1)));
        assert!(!flagged.contains(&(FuncId(0), 3)));
    }

    #[test]
    fn static_analysis_is_conservative_about_loaded_pointers() {
        let l = layout();
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::MovImm {
            dst: Reg::Rcx,
            imm: 0x10_0000,
        });
        b.push(Inst::Load {
            dst: Reg::Rdx,
            addr: Reg::Rcx,
            offset: 0,
        }); // rdx now Top
        b.push(Inst::Load {
            dst: Reg::Rax,
            addr: Reg::Rdx,
            offset: 0,
        }); // idx 2: flagged though it never touches the region at runtime
        b.push(Inst::Halt);
        p.add_function(b.finish());
        let flagged = StaticPointsTo { layout: l }.may_access(&p);
        assert!(flagged.contains(&(FuncId(0), 2)));
        let frac = StaticPointsTo { layout: l }.flagged_fraction(&p);
        assert!(frac >= 0.5, "conservative analysis flags most accesses");
    }

    #[test]
    fn dynamic_analysis_records_only_real_region_accesses() {
        let l = layout();
        let p = two_access_program(l.base);
        let mut dyn_pta = DynamicPointsTo::new(l);
        let mut m2 = Machine::new(p.clone());
        m2.space
            .map_region(VirtAddr(l.base), PAGE_SIZE, PageFlags::rw());
        m2.space
            .map_region(VirtAddr(0x10_0000), PAGE_SIZE, PageFlags::rw());
        // Drive the trace by stepping manually with a scoped tracer.
        run_traced(&mut m2, &mut dyn_pta);
        assert_eq!(dyn_pta.observed().len(), 1);
        assert!(dyn_pta.observed().contains(&(0, 1)));
        assert_eq!(dyn_pta.total_accesses(), 2);

        let mut marked = p.clone();
        dyn_pta.mark_privileged(&mut marked);
        assert!(marked.functions[0].body[1].privileged);
        assert!(!marked.functions[0].body[3].privileged);
    }

    /// Steps a machine to completion while forwarding accesses to `pta`.
    fn run_traced(m: &mut Machine, pta: &mut DynamicPointsTo) {
        #[derive(Debug)]
        struct Shared(std::rc::Rc<std::cell::RefCell<DynamicPointsTo>>);
        impl AccessTracer for Shared {
            fn record(&mut self, at: CodeAddr, is_store: bool, va: u64) {
                self.0.borrow_mut().record(at, is_store, va);
            }
        }
        let cell = std::rc::Rc::new(std::cell::RefCell::new(DynamicPointsTo::new(pta.layout)));
        m.set_tracer(Box::new(Shared(cell.clone())));
        m.run().expect_exit();
        m.take_tracer();
        let inner = std::rc::Rc::try_unwrap(cell).unwrap().into_inner();
        *pta = inner;
    }
}
