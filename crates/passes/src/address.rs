//! Address-based instrumentation: SFI masking and single-bound MPX checks.
//!
//! Implements the paper's Figure 2 transformations. Every non-privileged
//! load/store (depending on the mode) is split into an address computation
//! (`lea`) followed by either:
//!
//! * **MPX** — a single `bndcu` against `bnd0`, whose upper bound is the
//!   64 TB partition boundary, installed by a `bndmk` prepended to the
//!   entry function. A pointer into the sensitive partition faults
//!   deterministically (`#BR`).
//! * **SFI** — `movabs mask` + `and`, forcing the pointer below 64 TB. The
//!   access cannot reach the sensitive partition but is silently redirected
//!   rather than reported (the paper's noted SFI downside).

use memsentry_ir::{AluOp, Inst, InstNode, Program, Reg};
use memsentry_mmu::addr::{SENSITIVE_BASE, SFI_MASK};

use crate::manager::{Pass, PassFailure};

/// Which accesses to instrument (the paper's `-r`, `-w`, `-rw` modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstrumentMode {
    /// Instrument loads (protects confidentiality — CFI metadata, keys).
    pub loads: bool,
    /// Instrument stores (protects integrity — shadow stacks, CPI).
    pub stores: bool,
}

impl InstrumentMode {
    /// Loads only (`-r`).
    pub const READS: Self = Self {
        loads: true,
        stores: false,
    };
    /// Stores only (`-w`).
    pub const WRITES: Self = Self {
        loads: false,
        stores: true,
    };
    /// Both (`-rw`).
    pub const READ_WRITE: Self = Self {
        loads: true,
        stores: true,
    };
}

/// The two address-based techniques.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressKind {
    /// Classic software fault isolation (pointer masking).
    Sfi,
    /// Intel MPX repurposed with a single upper-bound check.
    Mpx,
    /// MPX with a full dual-bounds check (`bndcl` + `bndcu`) — the
    /// "arbitrary bounds" situation of paper §6.3, where MPX "becomes
    /// slightly worse than our SFI results". Kept for the ablation study.
    MpxDual,
    /// ISboxing (Deng et al., IFIP SEC'15; paper §7): a 32-bit
    /// address-size prefix truncates every access below 4 GiB. Nearly
    /// free at runtime, but it "significantly reduces the available
    /// address space" — the stack and heap must fit under 4 GiB too.
    IsBoxing,
}

/// The ISboxing mask: the address-size prefix truncates to 32 bits.
pub const ISBOXING_MASK: u64 = 0xffff_ffff;

/// The address-based instrumentation pass.
///
/// # Examples
///
/// ```
/// use memsentry_ir::{FunctionBuilder, Inst, Program, Reg};
/// use memsentry_passes::{AddressBasedPass, AddressKind, InstrumentMode, Pass};
///
/// let mut p = Program::new();
/// let mut b = FunctionBuilder::new("main");
/// b.push(Inst::Store { src: Reg::Rax, addr: Reg::Rbx, offset: 8 });
/// b.push(Inst::Halt);
/// p.add_function(b.finish());
///
/// AddressBasedPass::new(AddressKind::Mpx, InstrumentMode::WRITES).run(&mut p).unwrap();
/// // The store is now guarded: bndmk (entry), lea, bndcu, store.
/// assert!(p.functions[0]
///     .body
///     .iter()
///     .any(|n| matches!(n.inst, Inst::BndCu { .. })));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AddressBasedPass {
    /// SFI or MPX.
    pub kind: AddressKind,
    /// Which access kinds to instrument.
    pub mode: InstrumentMode,
}

impl AddressBasedPass {
    /// Creates the pass.
    pub fn new(kind: AddressKind, mode: InstrumentMode) -> Self {
        Self { kind, mode }
    }

    fn scratch_reg(avoid: &[Reg], func: &str, index: usize) -> Result<Reg, PassFailure> {
        let pool = [Reg::R11, Reg::R10, Reg::R9];
        pool.iter()
            .find(|r| !avoid.contains(r))
            .copied()
            .ok_or_else(|| PassFailure::NoScratchRegister {
                func: func.to_string(),
                index,
                avoid: avoid.to_vec(),
            })
    }

    fn rewrite(
        &self,
        out: &mut Vec<InstNode>,
        node: InstNode,
        func: &str,
        index: usize,
    ) -> Result<(), PassFailure> {
        match node.inst {
            Inst::Load { dst, addr, offset } if self.mode.loads && !node.privileged => {
                let s1 = Self::scratch_reg(&[addr], func, index)?;
                self.emit_check(out, addr, offset, s1);
                out.push(
                    Inst::Load {
                        dst,
                        addr: s1,
                        offset: 0,
                    }
                    .into(),
                );
            }
            Inst::Store { src, addr, offset } if self.mode.stores && !node.privileged => {
                let s1 = Self::scratch_reg(&[addr, src], func, index)?;
                self.emit_check(out, addr, offset, s1);
                out.push(
                    Inst::Store {
                        src,
                        addr: s1,
                        offset: 0,
                    }
                    .into(),
                );
            }
            _ => out.push(node),
        }
        Ok(())
    }

    fn emit_check(&self, out: &mut Vec<InstNode>, addr: Reg, offset: i64, s1: Reg) {
        out.push(
            Inst::Lea {
                dst: s1,
                base: addr,
                offset,
            }
            .into(),
        );
        match self.kind {
            AddressKind::Mpx => {
                out.push(Inst::BndCu { bnd: 0, reg: s1 }.into());
            }
            AddressKind::MpxDual => {
                out.push(Inst::BndCl { bnd: 0, reg: s1 }.into());
                out.push(Inst::BndCu { bnd: 0, reg: s1 }.into());
            }
            AddressKind::Sfi => {
                // Figure 2c's movabs+and; the IR folds the 64-bit mask
                // into one `and` immediate.
                out.push(
                    Inst::AluImm {
                        op: AluOp::And,
                        dst: s1,
                        imm: SFI_MASK,
                    }
                    .into(),
                );
            }
            AddressKind::IsBoxing => {
                // The prefix truncation, made explicit in the IR.
                out.push(
                    Inst::AluImm {
                        op: AluOp::And,
                        dst: s1,
                        imm: ISBOXING_MASK,
                    }
                    .into(),
                );
            }
        }
    }
}

impl Pass for AddressBasedPass {
    fn name(&self) -> &'static str {
        match self.kind {
            AddressKind::Sfi => "sfi-instrument",
            AddressKind::Mpx => "mpx-instrument",
            AddressKind::MpxDual => "mpx-dual-instrument",
            AddressKind::IsBoxing => "isboxing-instrument",
        }
    }

    fn run(&self, program: &mut Program) -> Result<(), PassFailure> {
        for func in &mut program.functions {
            if func.privileged {
                continue;
            }
            let old = std::mem::take(&mut func.body);
            let mut new = Vec::with_capacity(old.len() * 2);
            for (index, node) in old.into_iter().enumerate() {
                self.rewrite(&mut new, node, &func.name, index)?;
            }
            func.body = new;
        }
        if matches!(self.kind, AddressKind::Mpx | AddressKind::MpxDual) {
            // Initialize bnd0 to [0, 64 TB) at program start, with
            // bndpreserve semantics (the machine never spills bounds).
            let entry = program.entry;
            program.func_mut(entry).body.insert(
                0,
                Inst::BndMk {
                    bnd: 0,
                    lower: 0,
                    upper: SENSITIVE_BASE - 1,
                }
                .into(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsentry_cpu::{Machine, RunOutcome, Trap};
    use memsentry_ir::{verify, FunctionBuilder};
    use memsentry_mmu::{PageFlags, VirtAddr, PAGE_SIZE};

    /// Builds: store 11 to data, load it back, halt with the value.
    fn sample_program(data_addr: u64, privileged: bool) -> Program {
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::MovImm {
            dst: Reg::Rbx,
            imm: data_addr,
        });
        b.push(Inst::MovImm {
            dst: Reg::Rdi,
            imm: 11,
        });
        let store = Inst::Store {
            src: Reg::Rdi,
            addr: Reg::Rbx,
            offset: 8,
        };
        let load = Inst::Load {
            dst: Reg::Rax,
            addr: Reg::Rbx,
            offset: 8,
        };
        if privileged {
            b.push_privileged(store);
            b.push_privileged(load);
        } else {
            b.push(store);
            b.push(load);
        }
        b.push(Inst::Halt);
        p.add_function(b.finish());
        p
    }

    fn run(p: Program, map_at: u64) -> RunOutcome {
        let mut m = Machine::new(p);
        m.space
            .map_region(VirtAddr(map_at), PAGE_SIZE, PageFlags::rw());
        m.run()
    }

    #[test]
    fn mpx_preserves_benign_semantics() {
        let mut p = sample_program(0x10_0000, false);
        AddressBasedPass::new(AddressKind::Mpx, InstrumentMode::READ_WRITE)
            .run(&mut p)
            .unwrap();
        verify(&p).unwrap();
        assert_eq!(run(p, 0x10_0000).expect_exit(), 11);
    }

    #[test]
    fn sfi_preserves_benign_semantics() {
        let mut p = sample_program(0x10_0000, false);
        AddressBasedPass::new(AddressKind::Sfi, InstrumentMode::READ_WRITE)
            .run(&mut p)
            .unwrap();
        verify(&p).unwrap();
        assert_eq!(run(p, 0x10_0000).expect_exit(), 11);
    }

    #[test]
    fn mpx_faults_on_sensitive_pointer() {
        let mut p = sample_program(SENSITIVE_BASE, false);
        AddressBasedPass::new(AddressKind::Mpx, InstrumentMode::READ_WRITE)
            .run(&mut p)
            .unwrap();
        let out = run(p, SENSITIVE_BASE);
        assert!(matches!(out.expect_trap(), Trap::BoundRange { .. }));
    }

    #[test]
    fn sfi_redirects_sensitive_pointer_below_64tb() {
        // SFI cannot *detect* the violation: the store is forced below the
        // boundary (paper §3.2). Map both the sensitive page and its
        // masked alias; the value must land at the alias.
        let mut p = sample_program(SENSITIVE_BASE, false);
        AddressBasedPass::new(AddressKind::Sfi, InstrumentMode::WRITES)
            .run(&mut p)
            .unwrap();
        let mut m = Machine::new(p);
        m.space
            .map_region(VirtAddr(SENSITIVE_BASE), PAGE_SIZE, PageFlags::rw());
        let alias = (SENSITIVE_BASE + 8) & SFI_MASK; // == 8
        m.space.map_region(VirtAddr(0), PAGE_SIZE, PageFlags::rw());
        // The (uninstrumented) load still reads the sensitive page, which
        // was never written: it returns 0, not 11.
        assert_eq!(m.run().expect_exit(), 0);
        let mut buf = [0u8; 8];
        m.space
            .peek(VirtAddr(alias), &mut buf)
            .then_some(())
            .unwrap();
        assert_eq!(u64::from_le_bytes(buf), 11, "store redirected to alias");
    }

    #[test]
    fn privileged_accesses_are_not_instrumented() {
        let mut p = sample_program(SENSITIVE_BASE, true);
        AddressBasedPass::new(AddressKind::Mpx, InstrumentMode::READ_WRITE)
            .run(&mut p)
            .unwrap();
        assert_eq!(run(p, SENSITIVE_BASE).expect_exit(), 11);
    }

    #[test]
    fn privileged_functions_are_skipped_entirely() {
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("runtime");
        b.push(Inst::Load {
            dst: Reg::Rax,
            addr: Reg::Rbx,
            offset: 0,
        });
        b.push(Inst::Ret);
        p.add_function(b.privileged().finish());
        let before = p.functions[0].body.len();
        AddressBasedPass::new(AddressKind::Sfi, InstrumentMode::READ_WRITE)
            .run(&mut p)
            .unwrap();
        assert_eq!(p.functions[0].body.len(), before);
    }

    #[test]
    fn reads_mode_leaves_stores_alone() {
        let mut p = sample_program(0x10_0000, false);
        let before_stores = count_insts(&p, |i| i.is_store());
        AddressBasedPass::new(AddressKind::Mpx, InstrumentMode::READS)
            .run(&mut p)
            .unwrap();
        let checks = count_insts(&p, |i| matches!(i, Inst::BndCu { .. }));
        assert_eq!(checks, 1, "only the load is checked");
        assert_eq!(count_insts(&p, |i| i.is_store()), before_stores);
    }

    #[test]
    fn mpx_prepends_exactly_one_bndmk() {
        let mut p = sample_program(0x10_0000, false);
        AddressBasedPass::new(AddressKind::Mpx, InstrumentMode::WRITES)
            .run(&mut p)
            .unwrap();
        assert!(matches!(
            p.functions[0].body[0].inst,
            Inst::BndMk {
                bnd: 0,
                lower: 0,
                ..
            }
        ));
        assert_eq!(count_insts(&p, |i| matches!(i, Inst::BndMk { .. })), 1);
    }

    #[test]
    fn store_scratch_never_collides_with_source() {
        // Store with src = r11 (the first scratch candidate).
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::MovImm {
            dst: Reg::Rbx,
            imm: 0x10_0000,
        });
        b.push(Inst::MovImm {
            dst: Reg::R11,
            imm: 23,
        });
        b.push(Inst::Store {
            src: Reg::R11,
            addr: Reg::Rbx,
            offset: 0,
        });
        b.push(Inst::Load {
            dst: Reg::Rax,
            addr: Reg::Rbx,
            offset: 0,
        });
        b.push(Inst::Halt);
        p.add_function(b.finish());
        AddressBasedPass::new(AddressKind::Sfi, InstrumentMode::READ_WRITE)
            .run(&mut p)
            .unwrap();
        verify(&p).unwrap();
        assert_eq!(run(p, 0x10_0000).expect_exit(), 23);
    }

    #[test]
    fn mpx_dual_emits_both_checks_and_preserves_semantics() {
        let mut p = sample_program(0x10_0000, false);
        AddressBasedPass::new(AddressKind::MpxDual, InstrumentMode::READ_WRITE)
            .run(&mut p)
            .unwrap();
        verify(&p).unwrap();
        assert_eq!(count_insts(&p, |i| matches!(i, Inst::BndCl { .. })), 2);
        assert_eq!(count_insts(&p, |i| matches!(i, Inst::BndCu { .. })), 2);
        assert_eq!(run(p, 0x10_0000).expect_exit(), 11);
    }

    #[test]
    fn mpx_dual_faults_on_sensitive_pointer() {
        let mut p = sample_program(SENSITIVE_BASE, false);
        AddressBasedPass::new(AddressKind::MpxDual, InstrumentMode::READ_WRITE)
            .run(&mut p)
            .unwrap();
        let out = run(p, SENSITIVE_BASE);
        assert!(matches!(out.expect_trap(), Trap::BoundRange { .. }));
    }

    #[test]
    fn isboxing_confines_accesses_below_4gib() {
        // The safe region (anywhere above 4 GiB) is unreachable...
        let mut p = sample_program(0x2_0000_0000, false);
        AddressBasedPass::new(AddressKind::IsBoxing, InstrumentMode::READ_WRITE)
            .run(&mut p)
            .unwrap();
        verify(&p).unwrap();
        let mut m = Machine::new(p);
        m.space
            .map_region(VirtAddr(0x2_0000_0000), PAGE_SIZE, PageFlags::rw());
        // The masked alias (0x0 page) is unmapped: deterministic fault.
        assert!(matches!(
            m.run().expect_trap(),
            Trap::Mmu(memsentry_mmu::Fault::NotMapped { .. })
        ));
    }

    #[test]
    fn isboxing_breaks_programs_with_high_data() {
        // The paper's §7 caveat, demonstrated: the simulated stack lives
        // near 63 TB, so even a benign push is truncated away — the whole
        // process layout must be squeezed under 4 GiB.
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::Store {
            src: Reg::Rax,
            addr: Reg::Rsp,
            offset: -8,
        });
        b.push(Inst::Halt);
        p.add_function(b.finish());
        AddressBasedPass::new(AddressKind::IsBoxing, InstrumentMode::READ_WRITE)
            .run(&mut p)
            .unwrap();
        let mut m = Machine::new(p);
        assert!(m.run().expect_trap().to_string().contains("memory fault"));
    }

    fn count_insts(p: &Program, pred: impl Fn(&Inst) -> bool) -> usize {
        p.functions
            .iter()
            .flat_map(|f| f.body.iter())
            .filter(|n| pred(&n.inst))
            .count()
    }
}
