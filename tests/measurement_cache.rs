//! Properties of the measurement engine (`memsentry_bench::measure`):
//!
//! * caching is invisible — a session's `overhead` is bit-identical to a
//!   fresh uncached `runner::overhead` for every technique × profile;
//! * parallelism is invisible — serial (`--jobs 1`) and parallel
//!   sessions produce byte-identical figures (the in-process half of the
//!   CI determinism job, which additionally diffs `results/` on disk).

use memsentry_bench::figures::figure4;
use memsentry_bench::measure::Session;
use memsentry_bench::runner::{self, ExperimentConfig};
use memsentry_repro::memsentry::Technique;
use memsentry_repro::passes::{AddressKind, InstrumentMode, SwitchPoints};
use memsentry_repro::workloads::SPEC2006;
use proptest::prelude::*;

const SB: u32 = 4;

/// Every configuration the harness measures: all address-based kinds and
/// modes, and every domain technique at every switch-point class used by
/// the artifacts. (ISboxing is omitted: its 32-bit truncation breaks
/// programs with high addresses by design — workload stacks live above
/// 4 GiB — and no artifact measures it.)
fn any_config() -> impl Strategy<Value = ExperimentConfig> {
    let kind = prop_oneof![
        Just(AddressKind::Sfi),
        Just(AddressKind::Mpx),
        Just(AddressKind::MpxDual),
    ];
    let mode = prop_oneof![
        Just(InstrumentMode::READS),
        Just(InstrumentMode::WRITES),
        Just(InstrumentMode::READ_WRITE),
    ];
    let technique = prop_oneof![
        Just(Technique::Mpk),
        Just(Technique::Vmfunc),
        Just(Technique::Crypt),
        Just(Technique::MprotectBaseline),
        Just(Technique::PageTableSwitch),
    ];
    let points = prop_oneof![
        Just(SwitchPoints::CallRet),
        Just(SwitchPoints::IndirectBranch),
        Just(SwitchPoints::Syscall),
        Just(SwitchPoints::AllocatorCall),
    ];
    prop_oneof![
        (kind, mode).prop_map(|(kind, mode)| ExperimentConfig::Address { kind, mode }),
        (technique, points, prop_oneof![Just(16u64), Just(256u64)]).prop_map(
            |(technique, points, region_len)| ExperimentConfig::Domain {
                technique,
                points,
                region_len,
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_and_uncached_overheads_agree_exactly(
        profile_idx in 0usize..SPEC2006.len(),
        config in any_config(),
    ) {
        let profile = &SPEC2006[profile_idx];
        let session = Session::with_jobs(1);
        // Hit the cell twice: the second read must come from the cache.
        let first = session.overhead(profile, SB, config).unwrap();
        let second = session.overhead(profile, SB, config).unwrap();
        let fresh = runner::overhead(profile, SB, config).unwrap();
        prop_assert_eq!(first.to_bits(), fresh.to_bits());
        prop_assert_eq!(second.to_bits(), fresh.to_bits());
        prop_assert!(session.cache_hits() > 0);
    }
}

#[test]
fn serial_and_parallel_figures_are_byte_identical() {
    let serial = figure4(&Session::with_jobs(1), SB).unwrap();
    let parallel = figure4(&Session::with_jobs(8), SB).unwrap();
    assert_eq!(serial.rows.len(), parallel.rows.len());
    for ((name_s, row_s), (name_p, row_p)) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(name_s, name_p);
        let bits_s: Vec<u64> = row_s.iter().map(|v| v.to_bits()).collect();
        let bits_p: Vec<u64> = row_p.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_s, bits_p, "{name_s}");
    }
    assert_eq!(serial.render(), parallel.render());
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Scheduling nondeterminism must never leak into the numbers: two
    // parallel sessions over the same grid agree with each other.
    let a = figure4(&Session::with_jobs(4), SB).unwrap();
    let b = figure4(&Session::with_jobs(4), SB).unwrap();
    assert_eq!(a.render(), b.render());
}
