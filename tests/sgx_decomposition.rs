//! SGX as a safe-region host, end to end (paper §3.1's negative result).
//!
//! A shadow stack inside an enclave: the *accessor code* (push/check)
//! must move into the enclave and every call/ret pays an ECALL — 7664
//! cycles against MPK's ~102-cycle open/close pair. The test drives the
//! real enclave model and checks both the functionality and the two
//! orders of magnitude the paper uses to dismiss SGX.

use memsentry_repro::cpu::CostModel;
use memsentry_repro::sgx::{EnclaveBuilder, SgxError};

/// ECALL 0: push a return address; slot 0 of enclave memory is the index.
fn push_entry(mem: &mut [u8], args: [u64; 3]) -> u64 {
    let idx = u64::from_le_bytes(mem[0..8].try_into().unwrap());
    let at = 8 + (idx as usize) * 8;
    mem[at..at + 8].copy_from_slice(&args[0].to_le_bytes());
    mem[0..8].copy_from_slice(&(idx + 1).to_le_bytes());
    0
}

/// ECALL 1: pop and compare; returns 1 on match.
fn check_entry(mem: &mut [u8], args: [u64; 3]) -> u64 {
    let idx = u64::from_le_bytes(mem[0..8].try_into().unwrap()) - 1;
    let at = 8 + (idx as usize) * 8;
    let expected = u64::from_le_bytes(mem[at..at + 8].try_into().unwrap());
    mem[0..8].copy_from_slice(&idx.to_le_bytes());
    u64::from(expected == args[0])
}

fn shadow_enclave() -> memsentry_repro::sgx::Enclave {
    let mut b = EnclaveBuilder::new();
    b.add_page(&[]).unwrap();
    b.entry_point(0, push_entry);
    b.entry_point(1, check_entry);
    let token = b.sign();
    b.init(token).unwrap()
}

#[test]
fn enclave_shadow_stack_functions_correctly() {
    let mut e = shadow_enclave();
    // Nested pushes and balanced checks.
    for ret in [0x1000u64, 0x2000, 0x3000] {
        e.ecall(0, [ret, 0, 0]).unwrap();
    }
    assert_eq!(e.ecall(1, [0x3000, 0, 0]).unwrap(), 1);
    assert_eq!(e.ecall(1, [0x2000, 0, 0]).unwrap(), 1);
    // A mismatched (hijacked) return address is detected.
    assert_eq!(e.ecall(1, [0xbad, 0, 0]).unwrap(), 0);
    assert_eq!(e.transitions(), 6);
}

#[test]
fn sgx_transition_cost_dwarfs_mpk() {
    let mut e = shadow_enclave();
    let pairs = 100u64;
    for _ in 0..pairs {
        e.ecall(0, [0x40, 0, 0]).unwrap();
        e.ecall(1, [0x40, 0, 0]).unwrap();
    }
    let c = CostModel::default();
    let sgx_cycles = e.transitions() as f64 * c.sgx_transition;
    let mpk_cycles = pairs as f64 * 2.0 * 2.0 * c.mpk_switch(); // open+close per call and ret
    assert!(
        sgx_cycles > mpk_cycles * 30.0,
        "SGX {sgx_cycles} vs MPK {mpk_cycles}"
    );
}

#[test]
fn enclave_memory_is_fixed_at_init() {
    // "Currently the mappings of the enclave are fixed: no new memory can
    // be allocated" — a shadow stack deeper than the provisioned pages
    // fails hard instead of growing.
    let mut e = shadow_enclave(); // one 4 KiB page = 511 slots + index
    for i in 0..511u64 {
        e.ecall(0, [i, 0, 0]).unwrap();
    }
    // The 512th push would write past the fixed image.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| e.ecall(0, [511, 0, 0])));
    assert!(result.is_err(), "fixed-size enclave must not grow");
}

#[test]
fn unsigned_enclaves_cannot_launch() {
    let mut b = EnclaveBuilder::new();
    b.add_page(&[]).unwrap();
    b.entry_point(0, push_entry);
    assert_eq!(b.init(0).unwrap_err(), SgxError::BadLaunchToken);
}
