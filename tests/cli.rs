//! Integration tests for the `msentry` command-line tool.

use std::process::Command;

const MSENTRY: &str = env!("CARGO_BIN_EXE_msentry");
const DEMO: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/shadow_demo.ms");
const PRIV_DEMO: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/privileged_demo.ms");

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(MSENTRY)
        .args(args)
        .output()
        .expect("spawn msentry");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

/// Like [`run`] but reporting the raw exit code, for paths with
/// distinct codes (out-of-fuel exits 2).
fn run_code(args: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(MSENTRY)
        .args(args)
        .output()
        .expect("spawn msentry");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code(), text)
}

fn data(name: &str) -> String {
    format!("{}/tests/data/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn check_accepts_the_golden_listing() {
    let (ok, text) = run(&["check", DEMO]);
    assert!(ok, "{text}");
    assert!(text.contains("3 functions"), "{text}");
}

#[test]
fn check_flags_the_missing_mask() {
    // Only with address checking requested: an uninstrumented listing is
    // not inherently wrong.
    let path = data("bad_missing_mask.ms");
    let (ok, text) = run(&["check", &path]);
    assert!(ok, "{text}");
    let (ok, text) = run(&["check", &path, "--address", "w"]);
    assert!(!ok, "{text}");
    assert!(text.contains("unchecked-store"), "{text}");
    assert!(text.contains("fn0 <main> @5"), "{text}");
    assert!(text.contains("1 finding"), "{text}");
}

#[test]
fn check_flags_the_unclosed_domain() {
    let (ok, text) = run(&["check", &data("bad_unclosed_domain.ms")]);
    assert!(!ok, "{text}");
    assert!(text.contains("domain-leak"), "{text}");
    assert!(text.contains("fn0 <main> @5"), "{text}");
    assert!(text.contains("hlt"), "{text}");
    assert!(text.contains("window opened @0"), "{text}");
}

#[test]
fn check_accepts_a_window_spanning_an_open_safe_call() {
    // The old intraprocedural checker rejected any call inside a window;
    // the summary-based checker proves fn1 <leaf> open-safe.
    let (ok, text) = run(&["check", &data("good_interproc.ms")]);
    assert!(ok, "{text}");
    assert!(text.contains("2 functions"), "{text}");
}

#[test]
fn check_explains_the_non_open_safe_callee() {
    let (ok, text) = run(&["check", &data("bad_interproc_reopen.ms")]);
    assert!(!ok, "{text}");
    assert!(
        text.contains("call to fn1 <closer>, which is not open-safe"),
        "{text}"
    );
    assert!(
        text.contains("domain-switch or key-reload instructions"),
        "{text}"
    );
}

#[test]
fn check_flags_the_kernel_clobbered_address_fact() {
    // Syscalls clobber the full kernel ABI set (rax/rdi/rsi/rdx), not
    // just rax: the rdi-based check must not survive the crossing.
    let path = data("bad_syscall_clobber.ms");
    let (ok, text) = run(&["check", &path]);
    assert!(ok, "{text}");
    let (ok, text) = run(&["check", &path, "--address", "w"]);
    assert!(!ok, "{text}");
    assert!(text.contains("unchecked-store"), "{text}");
    assert!(text.contains("rdi"), "{text}");
    assert!(text.contains("@6"), "{text}");
}

#[test]
fn check_emits_structured_json() {
    let (ok, text) = run(&["check", &data("good_interproc.ms"), "--json"]);
    assert!(ok, "{text}");
    assert!(text.contains("\"clean\": true"), "{text}");
    assert!(text.contains("\"findings\": []"), "{text}");
    assert!(text.contains("\"technique\": \"mpk\""), "{text}");
    assert!(text.contains("\"boundaries\": 11"), "{text}");

    let (ok, text) = run(&["check", &data("bad_unclosed_domain.ms"), "--json"]);
    assert!(!ok, "{text}");
    assert!(text.contains("\"kind\": \"domain-leak\""), "{text}");
    assert!(text.contains("\"window\": 0"), "{text}");
    assert!(text.contains("\"cycles\": null"), "{text}");
}

#[test]
fn check_reports_exposure_and_summaries() {
    let (ok, text) = run(&[
        "check",
        &data("good_interproc.ms"),
        "--exposure",
        "--summaries",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("window fn0 <main> @0 [mpk]:"), "{text}");
    assert!(text.contains("cycles"), "{text}");
    assert!(
        text.contains("summary fn1 <leaf>: open-safe=true"),
        "{text}"
    );
}

#[test]
fn check_flags_the_clobbered_live_register() {
    let (ok, text) = run(&["check", &data("bad_clobber.ms")]);
    assert!(!ok, "{text}");
    assert!(text.contains("clobbered-live-register"), "{text}");
    assert!(text.contains("rbx"), "{text}");
}

#[test]
fn check_flags_the_stray_wrpkru() {
    let (ok, text) = run(&["check", &data("bad_stray_wrpkru.ms")]);
    assert!(!ok, "{text}");
    assert!(text.contains("stray-domain-switch"), "{text}");
    assert!(text.contains("fn0 <main> @1"), "{text}");
    assert!(text.contains("wrpkru"), "{text}");
}

#[test]
fn check_passes_instrumented_output_end_to_end() {
    // instrument | check: the checker must accept what the framework
    // emits. MPK exercises the window analyses; write the listing out and
    // re-check it through the CLI.
    let (ok, text) = run(&["instrument", PRIV_DEMO, "-t", "mpk", "-a", "data"]);
    assert!(ok, "{text}");
    let listing: String = text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.starts_with("exited"))
        .map(|l| format!("{l}\n"))
        .collect();
    let dir = std::env::temp_dir().join("msentry-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("instrumented_mpk.ms");
    std::fs::write(&path, listing).unwrap();
    let (ok, text) = run(&["check", path.to_str().unwrap()]);
    assert!(ok, "{text}");
    assert!(text.contains("ok ("), "{text}");
}

#[test]
fn run_executes_the_listing() {
    let (ok, text) = run(&["run", DEMO]);
    assert!(ok, "{text}");
    assert!(text.contains("exited with 0x1"), "{text}");
}

#[test]
fn instrument_prints_mpk_sequences() {
    let (ok, text) = run(&["instrument", PRIV_DEMO, "-t", "mpk", "-a", "data"]);
    assert!(ok, "{text}");
    assert!(text.contains("wrpkru"), "{text}");
    assert!(text.contains("mfence"), "{text}");
}

#[test]
fn protect_runs_under_each_technique() {
    for technique in ["mpk", "mpx", "sfi", "vmfunc", "crypt", "pts"] {
        let (ok, text) = run(&["protect", PRIV_DEMO, "-t", technique]);
        assert!(ok, "{technique}: {text}");
        assert!(text.contains("exited with"), "{technique}: {text}");
        if !matches!(technique, "pts" | "mpk") {
            // The privileged load lands 0x2a in rax (mpk/pts close
            // sequences legitimately clobber rax via r9/syscall).
            assert!(
                text.contains("0x2a") || technique == "crypt",
                "{technique}: {text}"
            );
        }
    }
}

#[test]
fn malformed_inject_specs_are_rejected_loudly() {
    // Every malformed shape — trailing garbage after the index, a
    // missing :ARGS clause, a missing tuple field, an overflowing
    // number, an unknown kind — gets the full spec-grammar diagnostic.
    for spec in [
        "signal@5x",
        "signal@",
        "preempt@5",
        "preempt@5:3",
        "write@5:1",
        "alloc-fail@5",
        "signal@99999999999999999999999",
        "write@5:0x10000,1z",
        "quantum-leap@5",
        "signal",
    ] {
        let (ok, text) = run(&["run", DEMO, "--inject", spec]);
        assert!(!ok, "'{spec}' must be rejected: {text}");
        assert!(
            text.contains("bad inject spec") && text.contains("signal@N"),
            "'{spec}' must get the spec-grammar diagnostic: {text}"
        );
    }
}

#[test]
fn well_formed_inject_specs_still_parse() {
    let (ok, text) = run(&["run", DEMO, "--inject", "write@2:0x7000,0x2a"]);
    assert!(ok, "{text}");
    assert!(text.contains("exited with"), "{text}");
}

#[test]
fn malformed_stream_specs_are_rejected_loudly() {
    // The stream forms share the one-shot forms' per-kind argument
    // grammar and the same diagnostic: a missing period, a burst without
    // its gap, an after: without +DELAY, an unknown trigger, stray or
    // missing action fields.
    for spec in [
        "signal@every:",
        "signal@every:3,4",
        "preempt@every:5,1",
        "signal@burst:1,2",
        "write@after:signal",
        "signal@after:quantum+1",
        "alloc-fail@after:signal+2",
    ] {
        let (ok, text) = run(&["run", DEMO, "--inject", spec]);
        assert!(!ok, "'{spec}' must be rejected: {text}");
        assert!(
            text.contains("bad inject spec") && text.contains("signal@N"),
            "'{spec}' must get the spec-grammar diagnostic: {text}"
        );
    }
}

#[test]
fn unfired_injected_events_warn_on_exit() {
    // A one-shot aimed past the end of the run, a recurring stream whose
    // phase is never reached, and a compound trigger that never arms all
    // get named in the exit warning.
    let (ok, text) = run(&["run", DEMO, "--inject", "signal@1000"]);
    assert!(ok, "{text}");
    assert!(
        text.contains("injected event signal@1000 never fired"),
        "{text}"
    );
    let (ok, text) = run(&[
        "run",
        DEMO,
        "--inject",
        "signal@every:1000",
        "--inject",
        "write@after:preempt+1,0x7000,0x2a",
    ]);
    assert!(ok, "{text}");
    assert!(
        text.contains("injected stream signal@every:1000") && text.contains("never fired"),
        "{text}"
    );
    assert!(text.contains("write@after:preempt+1"), "{text}");
}

#[test]
fn dropped_deliveries_warn_on_exit() {
    // Signals fire on schedule but no handler is installed, so every
    // delivery drops — and the run says so instead of exiting silently.
    let (ok, text) = run(&["run", DEMO, "--inject", "signal@every:3"]);
    assert!(ok, "{text}");
    assert!(
        text.contains("could not be delivered (dropped)"),
        "{text}"
    );
}

#[test]
fn nonexistent_handler_is_rejected_by_name() {
    // Satellite: a --handler naming a function the listing doesn't
    // define fails up front, listing what the listing does have,
    // instead of trapping on the first delivery.
    let (ok, text) = run(&["run", DEMO, "--handler", "9", "--inject", "signal@2"]);
    assert!(!ok, "{text}");
    assert!(
        text.contains("--handler fn9: no such function"),
        "{text}"
    );
    assert!(text.contains("fn0 <main>"), "{text}");
}

#[test]
fn storm_seed_jitters_deterministically() {
    let first = run(&["run", DEMO, "--inject", "signal@every:3", "--storm-seed", "7"]);
    let second = run(&["run", DEMO, "--inject", "signal@every:3", "--storm-seed", "7"]);
    assert_eq!(first.1, second.1, "same seed, same storm");
}

#[test]
fn out_of_fuel_exits_2_with_a_distinct_diagnostic() {
    let (code, text) = run_code(&["run", DEMO, "--fuel", "0"]);
    assert_eq!(code, Some(2), "{text}");
    assert!(
        text.contains("out of fuel: 0 instructions retired without halting"),
        "{text}"
    );
    assert!(text.contains("raise --fuel"), "{text}");
}

#[test]
fn fuel_equal_to_the_retired_count_suffices() {
    // Self-calibrating: learn the listing's instruction count from a
    // free run, then pin the fuel boundary exactly — n completes,
    // n-1 is out of fuel (exit 2).
    let (ok, text) = run(&["run", DEMO]);
    assert!(ok, "{text}");
    let n: u64 = text
        .split("after ")
        .nth(1)
        .and_then(|r| r.split(' ').next())
        .and_then(|w| w.parse().ok())
        .expect("run reports its instruction count");
    let (code, text) = run_code(&["run", DEMO, "--fuel", &n.to_string()]);
    assert_eq!(code, Some(0), "fuel == retired count must complete: {text}");
    let (code, text) = run_code(&["run", DEMO, "--fuel", &(n - 1).to_string()]);
    assert_eq!(code, Some(2), "{text}");
    assert!(text.contains(&format!("out of fuel: {}", n - 1)), "{text}");
}

#[test]
fn replay_at_prints_the_boundary_state() {
    let (ok, text) = run(&["replay", DEMO, "--at", "3"]);
    assert!(ok, "{text}");
    assert!(text.contains("recorded "), "{text}");
    assert!(text.contains("boundary 3 of "), "{text}");
    assert!(text.contains("pc fn"), "{text}");
    assert!(text.contains("rax="), "{text}");
    assert!(text.contains("domain: pkru="), "{text}");
    assert!(text.contains("state digest 0x"), "{text}");
}

#[test]
fn replay_under_a_technique_inspects_the_instrumented_run() {
    let (ok, text) = run(&["replay", PRIV_DEMO, "-t", "mpk", "--at", "5"]);
    assert!(ok, "{text}");
    assert!(text.contains("boundary 5 of "), "{text}");
    assert!(text.contains("stats:"), "{text}");
}

#[test]
fn replay_past_the_end_errors_cleanly() {
    let (ok, text) = run(&["replay", DEMO, "--at", "999999"]);
    assert!(!ok, "{text}");
    assert!(text.contains("past the end of the run"), "{text}");
}

#[test]
fn replay_needs_a_mode() {
    let (ok, text) = run(&["replay", DEMO]);
    assert!(!ok, "{text}");
    assert!(
        text.contains("--at <boundary>, --bisect, --crash-sweep"),
        "{text}"
    );
}

#[test]
fn replay_crash_sweep_reports_bit_exact_recovery() {
    for extra in [&[][..], &["-t", "mpk"][..]] {
        let mut args = vec!["replay", PRIV_DEMO, "--crash-sweep"];
        args.extend_from_slice(extra);
        let (ok, text) = run(&args);
        assert!(ok, "{extra:?}: {text}");
        assert!(text.contains("every recovery bit-exact"), "{extra:?}: {text}");
    }
}

#[test]
fn replay_bisect_needs_an_inject_template() {
    let (ok, text) = run(&["replay", DEMO, "--bisect"]);
    assert!(!ok, "{text}");
    assert!(text.contains("--bisect needs an --inject spec"), "{text}");
}

#[test]
fn replay_bisect_proves_the_clean_listing_unexposed() {
    // The demo listing never writes the campaign secret anywhere, so the
    // search must probe to exhaustion and report no exposed boundary.
    let (ok, text) = run(&["replay", DEMO, "--bisect", "--inject", "signal@0"]);
    assert!(ok, "{text}");
    assert!(text.contains("no exposed boundary in 0.."), "{text}");
}

#[test]
fn replay_bisect_re_aims_a_recurring_stream() {
    // An every: template is re-phased so its first firing lands at each
    // probed boundary; the clean listing still exposes nothing.
    let (ok, text) = run(&["replay", DEMO, "--bisect", "--inject", "signal@every:2"]);
    assert!(ok, "{text}");
    assert!(text.contains("no exposed boundary in 0.."), "{text}");
}

#[test]
fn replay_bisect_rejects_compound_specs() {
    // An after: spec fires relative to a delivery, not a boundary —
    // there is nothing to re-aim.
    let (ok, text) = run(&[
        "replay",
        DEMO,
        "--bisect",
        "--inject",
        "write@after:signal+1,0x7000,0x2a",
    ]);
    assert!(!ok, "{text}");
    assert!(text.contains("cannot re-aim an after: spec"), "{text}");
}

#[test]
fn replay_seeks_bit_exactly_into_a_storm() {
    // The recording carries the stream cursors, so a seek lands
    // mid-handler with the delivery state replayed, not reset.
    let (ok, text) = run(&[
        "replay", DEMO, "--inject", "signal@every:2", "--handler", "1", "--at", "5",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("boundary 5 of "), "{text}");
    assert!(text.contains("signals=2"), "{text}");
    assert!(text.contains("signal_depth=2"), "{text}");
}

#[test]
fn techniques_lists_table3() {
    let (ok, text) = run(&["techniques"]);
    assert!(ok);
    assert!(text.contains("VMFUNC"));
    assert!(text.contains("PTS"));
}

#[test]
fn unknown_technique_is_rejected() {
    let (ok, text) = run(&["protect", DEMO, "-t", "segmentation"]);
    assert!(!ok);
    assert!(text.contains("unknown"), "{text}");
}

#[test]
fn bad_listing_reports_line_numbers() {
    let dir = std::env::temp_dir().join("msentry-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.ms");
    std::fs::write(&bad, "fn0 <main>:\n    frobnicate rax\n").unwrap();
    let (ok, text) = run(&["check", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(text.contains("line 2"), "{text}");
}
