//! End-to-end integration: framework x defenses x attacks across crates.

use memsentry_repro::attacks::{attack, AttackResult};
use memsentry_repro::cpu::{Machine, RunOutcome, Trap};
use memsentry_repro::defenses::{CfiDefense, DieHardAllocator, ShadowStack};
use memsentry_repro::ir::{CodeAddr, FuncId, FunctionBuilder, Inst, Program, Reg};
use memsentry_repro::memsentry::{Application, MemSentry, Technique};
use memsentry_repro::passes::Pass;

/// The full attack of paper §2.3 across the whole technique matrix: the
/// headline result of the reproduction.
#[test]
fn attack_matrix_matches_paper_claims() {
    // Information hiding: bypassed, cheaply.
    let hiding = attack(Technique::InfoHiding, 1);
    assert_eq!(hiding.result, AttackResult::Hijacked);
    assert!(hiding.probes < 60);

    // Every deterministic technique: attack fails, zero probing needed to
    // "find" the region because it is not hidden at all.
    for technique in [
        Technique::Mpk,
        Technique::Vmfunc,
        Technique::Crypt,
        Technique::Mpx,
        Technique::Sfi,
    ] {
        let out = attack(technique, 1);
        assert_ne!(out.result, AttackResult::Hijacked, "{technique}");
        assert!(!out.secret_disclosed, "{technique} leaked plaintext");
    }
}

/// Shadow stack composed with every technique defeats a return hijack.
#[test]
fn shadow_stack_hardened_by_every_technique() {
    fn hijack_program() -> Program {
        let mut p = Program::new();
        let mut main = FunctionBuilder::new("main");
        main.push(Inst::Call(FuncId(1)));
        main.push(Inst::MovImm {
            dst: Reg::Rax,
            imm: 0,
        });
        main.push(Inst::Halt);
        let mut victim = FunctionBuilder::new("victim");
        victim.push(Inst::MovImm {
            dst: Reg::Rcx,
            imm: CodeAddr::entry(FuncId(2)).encode(),
        });
        victim.push(Inst::Store {
            src: Reg::Rcx,
            addr: Reg::Rsp,
            offset: 0,
        });
        victim.push(Inst::Ret);
        let mut gadget = FunctionBuilder::new("gadget");
        gadget.push(Inst::MovImm {
            dst: Reg::Rax,
            imm: 0x666,
        });
        gadget.push(Inst::Halt);
        p.add_function(main.finish());
        p.add_function(victim.finish());
        p.add_function(gadget.finish());
        p
    }

    for technique in Technique::ALL_DETERMINISTIC {
        let fw = MemSentry::new(technique, 4096);
        let shadow = ShadowStack::new(fw.layout());
        let mut p = hijack_program();
        shadow.run(&mut p).unwrap();
        fw.instrument(&mut p, Application::ProgramData).unwrap();
        let mut m = Machine::new(p);
        fw.prepare_machine(&mut m).unwrap();
        fw.write_region(&mut m, 0, &(fw.layout().base + 8).to_le_bytes());
        match m.run() {
            RunOutcome::Exited(code) => {
                assert_ne!(code, 0x666, "{technique}: hijack succeeded");
            }
            RunOutcome::Trapped(t) => {
                // Either the defense caught it or the technique faulted the
                // tampering — both are deterministic wins.
                let ok = matches!(
                    t,
                    Trap::DefenseAbort { .. } | Trap::Mmu(_) | Trap::BoundRange { .. }
                );
                assert!(ok, "{technique}: unexpected trap {t}");
            }
        }
    }
}

/// CFI's target table protected by MPK survives the table-flip attack
/// that defeats it under information hiding.
#[test]
fn cfi_table_flip_blocked_by_isolation() {
    fn program(target: FuncId) -> Program {
        let mut p = Program::new();
        let mut main = FunctionBuilder::new("main");
        main.push(Inst::MovImm {
            dst: Reg::Rbx,
            imm: CodeAddr::entry(target).encode(),
        });
        main.push(Inst::CallIndirect { target: Reg::Rbx });
        main.push(Inst::Halt);
        let mut good = FunctionBuilder::new("good");
        good.push(Inst::Ret);
        let mut gadget = FunctionBuilder::new("gadget");
        gadget.push(Inst::MovImm {
            dst: Reg::Rax,
            imm: 0x666,
        });
        gadget.push(Inst::Ret);
        p.add_function(main.finish());
        p.add_function(good.finish());
        p.add_function(gadget.finish());
        p
    }

    let fw = MemSentry::new(Technique::Mpk, 4096);
    let cfi = CfiDefense::new(fw.layout(), vec![FuncId(1)]);
    let mut p = program(FuncId(2));
    // Prepend the attacker's table-flip store.
    let base = fw.layout().base;
    let main = p.func_mut(FuncId(0));
    main.body.insert(
        0,
        Inst::MovImm {
            dst: Reg::R8,
            imm: base + 16,
        }
        .into(),
    );
    main.body.insert(
        1,
        Inst::MovImm {
            dst: Reg::Rcx,
            imm: 1,
        }
        .into(),
    );
    main.body.insert(
        2,
        Inst::Store {
            src: Reg::Rcx,
            addr: Reg::R8,
            offset: 0,
        }
        .into(),
    );
    cfi.run(&mut p).unwrap();
    fw.instrument(&mut p, Application::ProgramData).unwrap();
    let mut m = Machine::new(p);
    fw.prepare_machine(&mut m).unwrap();
    fw.write_region(&mut m, 8, &1u64.to_le_bytes());
    // The flip store hits the pkey-protected table: deterministic fault
    // before the whitelisted gadget call can happen.
    assert!(matches!(m.run(), RunOutcome::Trapped(Trap::Mmu(_))));
}

/// DieHard as the machine's allocator, with allocator-call switch points.
#[test]
fn diehard_allocator_composes_with_domain_switching() {
    let fw = MemSentry::new(Technique::Mpk, 4096);
    let mut p = Program::new();
    let mut b = FunctionBuilder::new("main");
    b.push(Inst::MovImm {
        dst: Reg::Rdi,
        imm: 128,
    });
    b.push(Inst::Alloc { size: Reg::Rdi });
    b.push(Inst::Mov {
        dst: Reg::Rbx,
        src: Reg::Rax,
    });
    b.push(Inst::MovImm {
        dst: Reg::Rcx,
        imm: 9,
    });
    b.push(Inst::Store {
        src: Reg::Rcx,
        addr: Reg::Rbx,
        offset: 0,
    });
    b.push(Inst::Free { ptr: Reg::Rbx });
    b.push(Inst::MovImm {
        dst: Reg::Rax,
        imm: 0,
    });
    b.push(Inst::Halt);
    p.add_function(b.finish());
    fw.instrument(&mut p, Application::HeapProtection).unwrap();
    let mut m = Machine::new(p);
    m.set_heap(Box::new(DieHardAllocator::new(11)));
    fw.prepare_machine(&mut m).unwrap();
    let out = m.run();
    assert_eq!(out.expect_exit(), 0);
    // malloc and free each got an open+close pair.
    assert_eq!(m.stats().wrpkrus, 4);
    assert_eq!(m.stats().allocator_calls, 2);
}

/// SGX is functional but absurdly expensive — the paper's conclusion.
#[test]
fn sgx_works_but_costs_orders_of_magnitude_more() {
    let run = |technique| {
        let fw = MemSentry::new(technique, 64);
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::MovImm {
            dst: Reg::Rbx,
            imm: fw.layout().base,
        });
        b.push(Inst::MovImm {
            dst: Reg::R12,
            imm: 5,
        });
        for _ in 0..16 {
            b.push_privileged(Inst::Store {
                src: Reg::R12,
                addr: Reg::Rbx,
                offset: 0,
            });
        }
        b.push(Inst::Halt);
        p.add_function(b.finish());
        fw.instrument(&mut p, Application::ProgramData).unwrap();
        let mut m = Machine::new(p);
        fw.prepare_machine(&mut m).unwrap();
        m.run().expect_exit();
        m.cycles()
    };
    let mpk = run(Technique::Mpk);
    let sgx = run(Technique::Sgx);
    assert!(
        sgx > mpk * 20.0,
        "SGX ({sgx}) must dwarf MPK ({mpk}) — paper Table 4"
    );
}
