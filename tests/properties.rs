//! Property-based tests over the core substrates (proptest).

use proptest::prelude::*;

use memsentry_repro::aes::{
    decrypt_block, encrypt_block, DecKeySchedule, KeySchedule, RegionCipher,
};
use memsentry_repro::cpu::Machine;
use memsentry_repro::ir::{AluOp, CodeAddr, Cond, FuncId, FunctionBuilder, Inst, Program, Reg};
use memsentry_repro::memsentry::{HiddenRegion, SafeRegionAllocator};
use memsentry_repro::mmu::addr::SFI_MASK;
use memsentry_repro::mmu::{
    AddressSpace, PageFlags, PageTable, PhysMemory, Pkru, VirtAddr, PAGE_SIZE, SENSITIVE_BASE,
};
use memsentry_repro::passes::{AddressBasedPass, AddressKind, InstrumentMode, Pass};

proptest! {
    /// AES block encryption round-trips for arbitrary keys and blocks.
    #[test]
    fn aes_block_roundtrip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let ks = KeySchedule::expand(&key);
        let dk = DecKeySchedule::from_enc(&ks);
        let ct = encrypt_block(block, &ks);
        prop_assert_eq!(decrypt_block(ct, &dk), block);
        // No fixed point for random inputs, overwhelmingly.
        prop_assert_ne!(ct, block);
    }

    /// Region encryption round-trips for arbitrary contents and sizes.
    #[test]
    fn aes_region_roundtrip(key in any::<[u8; 16]>(), data in proptest::collection::vec(any::<u8>(), 1..32)) {
        let chunks = data.len();
        let mut region: Vec<u8> = data.iter().cycle().take(chunks * 16).copied().collect();
        let original = region.clone();
        let rc = RegionCipher::new(&key);
        rc.encrypt_region(&mut region);
        prop_assert_ne!(&region, &original);
        rc.decrypt_region(&mut region);
        prop_assert_eq!(&region, &original);
    }

    /// The two key-expansion implementations always agree.
    #[test]
    fn keygenassist_matches_fips_expansion(key in any::<[u8; 16]>()) {
        prop_assert_eq!(
            KeySchedule::expand(&key),
            KeySchedule::expand_with_keygenassist(&key)
        );
    }

    /// The SFI mask confines every pointer below the partition boundary,
    /// and is the identity for pointers already below it.
    #[test]
    fn sfi_mask_invariants(ptr in any::<u64>()) {
        let masked = ptr & SFI_MASK;
        prop_assert!(masked < SENSITIVE_BASE);
        if ptr <= SFI_MASK {
            prop_assert_eq!(masked, ptr);
        }
    }

    /// Page tables: map-then-translate returns the mapped frame with the
    /// right page offset, for arbitrary user addresses.
    #[test]
    fn page_table_translate(vpn in 0u64..(1 << 35), offset in 0u64..PAGE_SIZE) {
        let mut pm = PhysMemory::new();
        let pt = PageTable::new(&mut pm);
        let va = VirtAddr(vpn * PAGE_SIZE + offset);
        let frame = pt.map_anon(&mut pm, va, PageFlags::rw());
        let pa = pt.translate(&mut pm, va).unwrap();
        prop_assert_eq!(pa.0, frame.0 + offset);
        // Unmap removes it.
        pt.unmap(&mut pm, va);
        prop_assert!(pt.translate(&mut pm, va).is_none());
    }

    /// pkru encode/decode: every (key, ad, wd) combination round-trips and
    /// permissions follow the bits.
    #[test]
    fn pkru_bits_roundtrip(key in 0u8..16, ad in any::<bool>(), wd in any::<bool>()) {
        let mut p = Pkru::allow_all();
        p.set_access_disable(key, ad);
        p.set_write_disable(key, wd);
        prop_assert_eq!(p.access_disabled(key), ad);
        prop_assert_eq!(p.write_disabled(key), wd);
        prop_assert_eq!(p.permits(key, false), !ad);
        prop_assert_eq!(p.permits(key, true), !ad && !wd);
    }

    /// Safe-region allocations never overlap and always stay in the
    /// sensitive partition.
    #[test]
    fn safe_regions_disjoint(sizes in proptest::collection::vec(1u64..20_000, 1..20)) {
        let mut alloc = SafeRegionAllocator::new();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for size in sizes {
            let r = alloc.alloc(size);
            prop_assert!(r.base >= SENSITIVE_BASE);
            prop_assert!(r.len >= size);
            for &(b, e) in &spans {
                prop_assert!(r.base >= e || r.base + r.len <= b);
            }
            spans.push((r.base, r.base + r.len));
        }
    }

    /// Hidden regions stay inside the hiding range and are page aligned,
    /// for arbitrary seeds.
    #[test]
    fn hidden_region_placement(seed in any::<u64>(), len in 1u64..10_000) {
        let r = HiddenRegion::allocate(len, seed);
        prop_assert_eq!(r.layout.base % PAGE_SIZE, 0);
        prop_assert!(r.layout.base < SENSITIVE_BASE);
        prop_assert!(r.layout.len >= len);
    }

    /// CodeAddr encoding is injective over realistic programs.
    #[test]
    fn code_addr_injective(f1 in 0u32..1000, i1 in 0u32..10_000, f2 in 0u32..1000, i2 in 0u32..10_000) {
        let a = CodeAddr { func: FuncId(f1), index: i1 };
        let b = CodeAddr { func: FuncId(f2), index: i2 };
        prop_assert_eq!(a.encode() == b.encode(), a == b);
        prop_assert_eq!(CodeAddr::decode(a.encode()), Some(a));
    }

    /// The interpreter computes ALU chains exactly like a direct Rust
    /// evaluation (differential test against an oracle).
    #[test]
    fn interpreter_matches_alu_oracle(
        init in any::<u64>(),
        ops in proptest::collection::vec((0u8..6, any::<u64>()), 1..40),
    ) {
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("main");
        b.push(Inst::MovImm { dst: Reg::Rax, imm: init });
        let mut expected = init;
        for (op, imm) in &ops {
            let (alu, f): (AluOp, fn(u64, u64) -> u64) = match op {
                0 => (AluOp::Add, u64::wrapping_add),
                1 => (AluOp::Sub, u64::wrapping_sub),
                2 => (AluOp::And, std::ops::BitAnd::bitand),
                3 => (AluOp::Or, std::ops::BitOr::bitor),
                4 => (AluOp::Xor, std::ops::BitXor::bitxor),
                _ => (AluOp::Mul, u64::wrapping_mul),
            };
            expected = f(expected, *imm);
            b.push(Inst::AluImm { op: alu, dst: Reg::Rax, imm: *imm });
        }
        b.push(Inst::Halt);
        p.add_function(b.finish());
        let mut m = Machine::new(p);
        prop_assert_eq!(m.run().expect_exit(), expected);
    }

    /// Checked memory writes round-trip through the full translation
    /// pipeline for arbitrary in-page offsets and values.
    #[test]
    fn address_space_rw_roundtrip(off in 0u64..(PAGE_SIZE * 3 - 8), value in any::<u64>()) {
        let mut s = AddressSpace::new();
        s.map_region(VirtAddr(0x40_0000), 3 * PAGE_SIZE, PageFlags::rw());
        s.write_u64(VirtAddr(0x40_0000 + off), value).unwrap();
        prop_assert_eq!(s.read_u64(VirtAddr(0x40_0000 + off)).unwrap(), value);
    }

    /// Machine cycle accounting is monotone and positive for any program
    /// that retires at least one instruction.
    #[test]
    fn cycles_monotone(n in 1u64..200) {
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("main");
        for i in 0..n {
            b.push(Inst::MovImm { dst: Reg::Rax, imm: i });
        }
        b.push(Inst::Halt);
        p.add_function(b.finish());
        let mut m = Machine::new(p);
        let mut last = 0.0;
        while m.step().is_ok() {
            prop_assert!(m.cycles() >= last);
            last = m.cycles();
            if m.stats().instructions > n {
                break;
            }
        }
        prop_assert!(last > 0.0);
    }
    /// Address-based instrumentation never changes the result of a benign
    /// program (differential test: baseline vs MPX vs dual-MPX vs SFI on
    /// randomly generated load/store/ALU programs).
    #[test]
    fn instrumentation_preserves_benign_semantics(
        ops in proptest::collection::vec((0u8..5, 0u64..400, any::<u64>()), 1..60),
    ) {
        let build = || {
            let mut p = Program::new();
            let mut b = FunctionBuilder::new("main");
            b.push(Inst::MovImm { dst: Reg::Rbx, imm: 0x40_0000 });
            b.push(Inst::MovImm { dst: Reg::Rax, imm: 1 });
            for (op, slot, imm) in &ops {
                let offset = (slot * 8) as i64;
                match op {
                    0 => b.push(Inst::Store { src: Reg::Rax, addr: Reg::Rbx, offset }),
                    1 => b.push(Inst::Load { dst: Reg::Rax, addr: Reg::Rbx, offset }),
                    2 => b.push(Inst::AluImm { op: AluOp::Add, dst: Reg::Rax, imm: *imm }),
                    3 => b.push(Inst::AluImm { op: AluOp::Xor, dst: Reg::Rax, imm: *imm }),
                    _ => b.push(Inst::Lea { dst: Reg::Rcx, base: Reg::Rbx, offset }),
                };
            }
            b.push(Inst::Halt);
            p.add_function(b.finish());
            p
        };
        let run = |p: Program| {
            let mut m = Machine::new(p);
            m.space.map_region(VirtAddr(0x40_0000), PAGE_SIZE, PageFlags::rw());
            m.run().expect_exit()
        };
        let baseline = run(build());
        for kind in [AddressKind::Mpx, AddressKind::MpxDual, AddressKind::Sfi] {
            let mut p = build();
            AddressBasedPass::new(kind, InstrumentMode::READ_WRITE).run(&mut p).unwrap();
            memsentry_repro::ir::verify(&p).unwrap();
            prop_assert_eq!(run(p), baseline, "kind {:?}", kind);
        }
    }

    /// The workload generator is a pure function of its spec: identical
    /// specs produce bit-identical programs and cycle counts.
    #[test]
    fn workloads_are_deterministic(which in 0usize..19, superblocks in 1u32..4) {
        use memsentry_repro::workloads::{Workload, WorkloadSpec, SPEC2006};
        let spec = WorkloadSpec { profile: SPEC2006[which], superblocks };
        let a = Workload::build(spec);
        let b = Workload::build(spec);
        prop_assert_eq!(&a.program, &b.program);
        let cycles = |w: &Workload| {
            let mut m = Machine::new(w.program.clone());
            w.prepare(&mut m);
            m.run().expect_exit();
            m.cycles()
        };
        prop_assert_eq!(cycles(&a), cycles(&b));
    }
    /// Restoring a machine mid-run and continuing yields bit-identical
    /// statistics to an uninterrupted run — the access pattern the fault
    /// campaign's injection sweep relies on (golden cases live in
    /// `tests/snapshot_restore.rs`).
    #[test]
    fn snapshot_restore_replays_bit_identically(which in 0usize..19, boundary in 1u64..400) {
        use memsentry_repro::workloads::{Workload, WorkloadSpec, SPEC2006};
        let w = Workload::build(WorkloadSpec { profile: SPEC2006[which], superblocks: 1 });
        let mut m = Machine::new(w.program.clone());
        w.prepare(&mut m);
        for _ in 0..boundary {
            if m.is_halted() { break; }
            m.step().expect("clean run");
        }
        let snap = m.snapshot();
        m.run().expect_exit();
        let reference = (*m.stats(), m.cycles());
        m.restore(&snap);
        prop_assert_eq!(m.stats().instructions, snap.instructions());
        m.run().expect_exit();
        prop_assert_eq!((*m.stats(), m.cycles()), reference);
    }

    /// print -> parse round-trips arbitrary programs (fuzzed over the
    /// instruction space).
    #[test]
    fn listing_roundtrip(
        insts in proptest::collection::vec((0u8..12, 0usize..16, 0usize..16, any::<u32>()), 1..50),
        privileged_fn in any::<bool>(),
    ) {
        use memsentry_repro::ir::{parse_program, print::format_program, InstNode, Function};
        let reg = |i: usize| Reg::ALL[i];
        let mut f = Function::new("fuzzed");
        f.privileged = privileged_fn;
        for (k, a, b, imm) in &insts {
            let (a, b, imm) = (reg(*a), reg(*b), *imm as u64);
            let inst = match k {
                0 => Inst::MovImm { dst: a, imm },
                1 => Inst::Mov { dst: a, src: b },
                2 => Inst::Lea { dst: a, base: b, offset: imm as i64 % 4096 - 2048 },
                3 => Inst::Load { dst: a, addr: b, offset: (imm % 512) as i64 },
                4 => Inst::Store { src: a, addr: b, offset: (imm % 512) as i64 },
                5 => Inst::AluImm { op: AluOp::Add, dst: a, imm },
                6 => Inst::AluReg { op: AluOp::Xor, dst: a, src: b },
                7 => Inst::BndCu { bnd: (imm % 4) as u8, reg: a },
                8 => Inst::WrPkru { src: a },
                9 => Inst::VmFunc { eptp: (imm % 512) as u32 },
                10 => Inst::Syscall { nr: imm % 12 },
                _ => Inst::Nop,
            };
            f.body.push(InstNode { inst, privileged: imm % 3 == 0 });
        }
        f.body.push(InstNode::plain(Inst::Halt));
        let mut p = Program::new();
        p.add_function(f);
        let text = format_program(&p);
        let parsed = parse_program(&text).unwrap();
        prop_assert_eq!(parsed, p);
    }
    /// The parser never panics on arbitrary input — it returns errors.
    #[test]
    fn parser_is_panic_free(text in "[ -~\n]{0,400}") {
        use memsentry_repro::ir::parse_program;
        let _ = parse_program(&text);
    }

    /// Every SPEC and server profile generates a program whose measured
    /// load/store mix tracks the profile within 20%.
    #[test]
    fn all_profiles_track_their_mix(which in 0usize..22) {
        use memsentry_repro::workloads::{Workload, WorkloadSpec, SERVERS, SPEC2006};
        let profile = if which < 19 { SPEC2006[which] } else { SERVERS[which - 19] };
        let w = Workload::build(WorkloadSpec { profile, superblocks: 12 });
        let mut m = Machine::new(w.program.clone());
        w.prepare(&mut m);
        m.run().expect_exit();
        let s = m.stats();
        let per_k = |x: u64| x as f64 * 1000.0 / s.instructions as f64;
        let loads = per_k(s.loads);
        prop_assert!(
            (loads - f64::from(profile.loads_pk)).abs() / f64::from(profile.loads_pk) < 0.2,
            "{}: loads/k {} vs {}", profile.name, loads, profile.loads_pk
        );
        let stores = per_k(s.stores);
        prop_assert!(
            (stores - f64::from(profile.stores_pk)).abs() / f64::from(profile.stores_pk) < 0.2,
            "{}: stores/k {} vs {}", profile.name, stores, profile.stores_pk
        );
    }
    /// The shadow-stack defense (under MPK) is semantics-preserving over
    /// random benign call trees of arbitrary shape.
    #[test]
    fn shadow_stack_preserves_random_call_trees(
        tree in proptest::collection::vec(0u8..3, 1..14),
    ) {
        use memsentry_repro::defenses::ShadowStack;
        use memsentry_repro::memsentry::{Application, MemSentry, Technique};
        use memsentry_repro::passes::Pass;
        use memsentry_repro::ir::FuncId;

        // Build a chain of functions; each either calls the next one 0, 1
        // or 2 times before returning, and bumps a counter in rbx.
        let n = tree.len();
        let mut p = Program::new();
        let mut main = FunctionBuilder::new("main");
        main.push(Inst::MovImm { dst: Reg::Rbx, imm: 0 });
        main.push(Inst::Call(FuncId(1)));
        main.push(Inst::Mov { dst: Reg::Rax, src: Reg::Rbx });
        main.push(Inst::Halt);
        p.add_function(main.finish());
        for (i, &calls) in tree.iter().enumerate() {
            let mut f = FunctionBuilder::new(format!("f{i}"));
            f.push(Inst::AluImm { op: AluOp::Add, dst: Reg::Rbx, imm: 1 });
            if i + 1 < n {
                for _ in 0..calls {
                    f.push(Inst::Call(FuncId(i as u32 + 2)));
                }
            }
            f.push(Inst::Ret);
            p.add_function(f.finish());
        }
        let baseline = {
            let mut m = Machine::new(p.clone());
            m.run().expect_exit()
        };
        let fw = MemSentry::new(Technique::Mpk, 1 << 16);
        let shadow = ShadowStack::new(fw.layout());
        let mut defended = p;
        shadow.run(&mut defended).unwrap();
        fw.instrument(&mut defended, Application::ProgramData).unwrap();
        let mut m = Machine::new(defended);
        fw.prepare_machine(&mut m).unwrap();
        fw.write_region(&mut m, 0, &(fw.layout().base + 8).to_le_bytes());
        prop_assert_eq!(m.run().expect_exit(), baseline);
    }

    /// The event-horizon block executor (`Machine::run` /
    /// `Machine::run_until`) retires bit-identical statistics to driving
    /// the same machine one `step()` at a time, across random programs ×
    /// random event schedules — events landing on block boundaries, the
    /// first and last instruction, and past the halt (the in-crate seeded
    /// twin exhaustively sweeps every boundary; this fuzzes the space).
    #[test]
    fn horizon_execution_matches_stepping(
        ops in proptest::collection::vec((0u8..6, 0u64..64, any::<u64>()), 1..50),
        events in proptest::collection::vec((0u8..4, 0u64..120), 0..6),
    ) {
        use memsentry_repro::cpu::{Event, EventAction, EventSchedule, RunOutcome, SignalPolicy};

        const SCRATCH: u64 = 0x20_0000;
        let build = || {
            let mut p = Program::new();
            let mut b = FunctionBuilder::new("main");
            b.push(Inst::MovImm { dst: Reg::Rbx, imm: SCRATCH });
            for (op, slot, imm) in &ops {
                let offset = (slot * 8) as i64;
                match op {
                    0 => b.push(Inst::Store { src: Reg::Rax, addr: Reg::Rbx, offset }),
                    1 => b.push(Inst::Load { dst: Reg::Rax, addr: Reg::Rbx, offset }),
                    2 => b.push(Inst::AluImm { op: AluOp::Add, dst: Reg::Rax, imm: *imm }),
                    // Masking marks rbx for the SFI dependency charge while
                    // keeping it a valid scratch address.
                    3 => b.push(Inst::AluImm { op: AluOp::And, dst: Reg::Rbx, imm: !0xfff | SCRATCH }),
                    4 => b.push(Inst::Call(FuncId(1))),
                    _ => b.push(Inst::Nop),
                };
            }
            b.push(Inst::Halt);
            p.add_function(b.finish());
            let mut helper = FunctionBuilder::new("helper");
            helper.push(Inst::AluImm { op: AluOp::Add, dst: Reg::R9, imm: 1 });
            helper.push(Inst::Ret);
            p.add_function(helper.finish());
            let mut handler = FunctionBuilder::new("handler");
            handler.push(Inst::Load { dst: Reg::R10, addr: Reg::Rbx, offset: 0 });
            handler.push(Inst::Syscall { nr: memsentry_repro::cpu::kernel::nr::SIGRETURN });
            handler.push(Inst::Halt);
            p.add_function(handler.finish());
            let mut sibling = FunctionBuilder::new("sibling");
            sibling.push(Inst::MovImm { dst: Reg::Rbx, imm: SCRATCH });
            sibling.push(Inst::Load { dst: Reg::Rax, addr: Reg::Rbx, offset: 8 });
            sibling.push(Inst::AluImm { op: AluOp::Add, dst: Reg::Rax, imm: 1 });
            sibling.push(Inst::Store { src: Reg::Rax, addr: Reg::Rbx, offset: 8 });
            sibling.push(Inst::Halt);
            p.add_function(sibling.finish());
            p
        };
        let schedule = EventSchedule::new(
            events
                .iter()
                .map(|&(kind, at)| Event {
                    at,
                    action: match kind {
                        0 => EventAction::Signal,
                        1 => EventAction::Write { addr: SCRATCH + 16, value: at },
                        2 => EventAction::FailAllocs { count: 1 },
                        _ => EventAction::Preempt { to: 1, quantum: 3, scrub: at % 2 == 0 },
                    },
                })
                .collect(),
        );
        let machine = || {
            let mut m = Machine::new(build());
            m.space.map_region(VirtAddr(SCRATCH), PAGE_SIZE, PageFlags::rw());
            m.spawn_thread(FuncId(3), [0; 3]);
            m.set_signal_policy(SignalPolicy { handler: FuncId(2), scrub: false });
            m.set_event_schedule(schedule.clone());
            m
        };
        let mut fast = machine();
        let batched = fast.run();
        let mut slow = machine();
        let stepped = loop {
            match slow.step() {
                Ok(()) => {
                    if let Some(code) = slow.exit_code() {
                        break RunOutcome::Exited(code);
                    }
                }
                Err(t) => break RunOutcome::Trapped(t),
            }
        };
        prop_assert_eq!(batched, stepped);
        prop_assert_eq!(fast.stats(), slow.stats());
        prop_assert_eq!(fast.cycles().to_bits(), slow.cycles().to_bits());
        prop_assert_eq!(fast.pending_events(), slow.pending_events());
        prop_assert_eq!(fast.signal_depth(), slow.signal_depth());
    }

    /// The threaded-code engine is invisible: over random programs,
    /// random event schedules, and every address-based instrumentation
    /// flavour (whose mask/bound sequences exercise the fused
    /// superinstruction arms), a threaded `run`, an unthreaded `run`,
    /// and the per-instruction stepper finish with identical outcomes,
    /// `Stats`, cycle bits, and full machine-state digests.
    #[test]
    fn threaded_engine_matches_stepping_under_events_and_instrumentation(
        ops in proptest::collection::vec((0u8..7, 0u64..64, any::<u64>()), 1..50),
        events in proptest::collection::vec((0u8..4, 0u64..150), 0..5),
        flavour in 0u8..4,
    ) {
        use memsentry_repro::cpu::{
            Event, EventAction, EventSchedule, MachineConfig, RunOutcome, SignalPolicy,
        };

        const SCRATCH: u64 = 0x20_0000;
        let build = || {
            let mut p = Program::new();
            let mut b = FunctionBuilder::new("main");
            b.push(Inst::MovImm { dst: Reg::Rbx, imm: SCRATCH });
            for (op, slot, imm) in &ops {
                let offset = (slot * 8) as i64;
                match op {
                    0 => b.push(Inst::Store { src: Reg::Rax, addr: Reg::Rbx, offset }),
                    1 => b.push(Inst::Load { dst: Reg::Rax, addr: Reg::Rbx, offset }),
                    2 => b.push(Inst::AluImm { op: AluOp::Add, dst: Reg::Rax, imm: *imm }),
                    3 => b.push(Inst::AluImm { op: AluOp::And, dst: Reg::Rbx, imm: !0xfff | SCRATCH }),
                    4 => b.push(Inst::Lea { dst: Reg::Rcx, base: Reg::Rbx, offset }),
                    5 => b.push(Inst::Call(FuncId(1))),
                    _ => b.push(Inst::Nop),
                };
            }
            b.push(Inst::Halt);
            p.add_function(b.finish());
            let mut helper = FunctionBuilder::new("helper");
            helper.push(Inst::AluImm { op: AluOp::Add, dst: Reg::R9, imm: 1 });
            helper.push(Inst::Ret);
            p.add_function(helper.finish());
            let mut handler = FunctionBuilder::new("handler");
            handler.push(Inst::Load { dst: Reg::R10, addr: Reg::Rbx, offset: 0 });
            handler.push(Inst::Syscall { nr: memsentry_repro::cpu::kernel::nr::SIGRETURN });
            handler.push(Inst::Halt);
            p.add_function(handler.finish());
            let mut sibling = FunctionBuilder::new("sibling");
            sibling.push(Inst::MovImm { dst: Reg::Rbx, imm: SCRATCH });
            sibling.push(Inst::Load { dst: Reg::Rax, addr: Reg::Rbx, offset: 8 });
            sibling.push(Inst::AluImm { op: AluOp::Add, dst: Reg::Rax, imm: 1 });
            sibling.push(Inst::Store { src: Reg::Rax, addr: Reg::Rbx, offset: 8 });
            sibling.push(Inst::Halt);
            p.add_function(sibling.finish());
            match flavour {
                0 => {}
                1 => AddressBasedPass::new(AddressKind::Sfi, InstrumentMode::READ_WRITE)
                    .run(&mut p).unwrap(),
                2 => AddressBasedPass::new(AddressKind::Mpx, InstrumentMode::READ_WRITE)
                    .run(&mut p).unwrap(),
                _ => AddressBasedPass::new(AddressKind::MpxDual, InstrumentMode::READ_WRITE)
                    .run(&mut p).unwrap(),
            }
            p
        };
        let schedule = EventSchedule::new(
            events
                .iter()
                .map(|&(kind, at)| Event {
                    at,
                    action: match kind {
                        0 => EventAction::Signal,
                        1 => EventAction::Write { addr: SCRATCH + 16, value: at },
                        2 => EventAction::FailAllocs { count: 1 },
                        _ => EventAction::Preempt { to: 1, quantum: 3, scrub: at % 2 == 0 },
                    },
                })
                .collect(),
        );
        let machine = |threaded: bool| {
            let mut m = Machine::with_config(
                build(),
                MachineConfig { threaded, ..MachineConfig::default() },
            );
            m.space.map_region(VirtAddr(SCRATCH), PAGE_SIZE, PageFlags::rw());
            m.spawn_thread(FuncId(3), [0; 3]);
            m.set_signal_policy(SignalPolicy { handler: FuncId(2), scrub: false });
            m.set_event_schedule(schedule.clone());
            m
        };
        let mut threaded = machine(true);
        let fast = threaded.run();
        let mut unthreaded = machine(false);
        prop_assert_eq!(fast.clone(), unthreaded.run());
        let mut slow = machine(false);
        let stepped = loop {
            match slow.step() {
                Ok(()) => {
                    if let Some(code) = slow.exit_code() {
                        break RunOutcome::Exited(code);
                    }
                }
                Err(t) => break RunOutcome::Trapped(t),
            }
        };
        prop_assert_eq!(fast, stepped);
        for other in [&unthreaded, &slow] {
            prop_assert_eq!(threaded.stats(), other.stats());
            prop_assert_eq!(threaded.cycles().to_bits(), other.cycles().to_bits());
            prop_assert_eq!(threaded.state_digest(), other.state_digest());
        }
    }

    /// Storm schedules are as safe as one-shots: over random programs and
    /// random recurring/burst/compound stream specs, the machine never
    /// panics — every run ends in a normal exit or a typed trap — and the
    /// threaded engine retires an identical storm boundary-for-boundary:
    /// state digests are equal at every retired-instruction boundary, not
    /// just at the end.
    #[test]
    fn storms_never_panic_and_engines_agree(
        ops in proptest::collection::vec((0u8..6, 0u64..64, any::<u64>()), 1..40),
        sig_period in 1u64..24,
        pre_period in 1u64..32,
        burst in (0u64..60, 0u64..6, 1u64..4),
        delay in 0u64..8,
        seed in any::<u64>(),
        depth_limit in 1usize..6,
    ) {
        use memsentry_repro::cpu::{
            seeded_offsets, EventAction, EventSchedule, MachineConfig, RunOutcome, SignalPolicy,
            StreamSource, TriggerKind,
        };

        const SCRATCH: u64 = 0x20_0000;
        let build = || {
            let mut p = Program::new();
            let mut b = FunctionBuilder::new("main");
            b.push(Inst::MovImm { dst: Reg::Rbx, imm: SCRATCH });
            for (op, slot, imm) in &ops {
                let offset = (slot * 8) as i64;
                match op {
                    0 => b.push(Inst::Store { src: Reg::Rax, addr: Reg::Rbx, offset }),
                    1 => b.push(Inst::Load { dst: Reg::Rax, addr: Reg::Rbx, offset }),
                    2 => b.push(Inst::AluImm { op: AluOp::Add, dst: Reg::Rax, imm: *imm }),
                    3 => b.push(Inst::AluImm { op: AluOp::And, dst: Reg::Rbx, imm: !0xfff | SCRATCH }),
                    4 => b.push(Inst::Call(FuncId(1))),
                    _ => b.push(Inst::Nop),
                };
            }
            b.push(Inst::Halt);
            p.add_function(b.finish());
            let mut helper = FunctionBuilder::new("helper");
            helper.push(Inst::AluImm { op: AluOp::Add, dst: Reg::R9, imm: 1 });
            helper.push(Inst::Ret);
            p.add_function(helper.finish());
            let mut handler = FunctionBuilder::new("handler");
            handler.push(Inst::Load { dst: Reg::R10, addr: Reg::Rbx, offset: 0 });
            handler.push(Inst::Syscall { nr: memsentry_repro::cpu::kernel::nr::SIGRETURN });
            handler.push(Inst::Halt);
            p.add_function(handler.finish());
            let mut sibling = FunctionBuilder::new("sibling");
            sibling.push(Inst::MovImm { dst: Reg::Rbx, imm: SCRATCH });
            sibling.push(Inst::Load { dst: Reg::Rax, addr: Reg::Rbx, offset: 8 });
            sibling.push(Inst::Store { src: Reg::Rax, addr: Reg::Rbx, offset: 8 });
            sibling.push(Inst::Halt);
            p.add_function(sibling.finish());
            p
        };
        let jitter = seeded_offsets(seed, 2, 0, sig_period);
        let mut streams = vec![
            StreamSource::Every {
                period: sig_period,
                phase: jitter[0],
                limit: None,
                action: EventAction::Signal,
            },
            StreamSource::Every {
                period: pre_period,
                phase: jitter[1],
                limit: None,
                action: EventAction::Preempt { to: 1, quantum: 3, scrub: seed % 2 == 0 },
            },
            StreamSource::After {
                trigger: TriggerKind::Signal,
                delay,
                action: EventAction::Signal,
            },
            StreamSource::After {
                trigger: TriggerKind::Preempt,
                delay,
                action: EventAction::Write { addr: SCRATCH + 16, value: seed },
            },
        ];
        // count == 0 is "no burst" — Every with limit Some(0) is born
        // exhausted, which is itself worth covering.
        let (at, count, gap) = burst;
        streams.push(StreamSource::Every {
            period: gap,
            phase: at,
            limit: Some(count),
            action: EventAction::Signal,
        });
        let schedule = EventSchedule::with_streams(Vec::new(), streams);
        let machine = |threaded: bool| {
            let mut m = Machine::with_config(
                build(),
                MachineConfig { threaded, ..MachineConfig::default() },
            );
            m.space.map_region(VirtAddr(SCRATCH), PAGE_SIZE, PageFlags::rw());
            m.spawn_thread(FuncId(3), [0; 3]);
            m.set_signal_policy(SignalPolicy { handler: FuncId(2), scrub: false });
            m.set_signal_depth_limit(depth_limit);
            m.set_event_schedule(schedule.clone());
            m.set_fuel(5_000);
            m
        };
        let mut a = machine(true);
        let mut b = machine(false);
        let end = loop {
            prop_assert_eq!(a.state_digest(), b.state_digest());
            if a.is_halted() {
                break RunOutcome::Exited(a.exit_code().unwrap_or(0));
            }
            let n = a.stats().instructions;
            let ra = a.run_until(n + 1);
            let rb = b.run_until(n + 1);
            prop_assert_eq!(ra.clone(), rb);
            if let Err(t) = ra {
                break RunOutcome::Trapped(t);
            }
        };
        // Reaching a RunOutcome at all IS the no-panic oracle; a typed
        // trap (reentrancy overflow, out of fuel) is a legitimate end.
        drop(end);
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.cycles().to_bits(), b.cycles().to_bits());
    }

    /// Quiescent snapshot/restore under a storm is bit-exact, and restore
    /// clears every piece of transient storm state — queued per-thread
    /// signals, handler depth, active preemption — so the rewound machine
    /// re-derives the storm's future from the reinstalled schedule alone:
    /// resuming from the snapshot finishes identically to a run that was
    /// never interrupted.
    #[test]
    fn restore_is_bit_exact_and_clears_storm_state(
        ops in proptest::collection::vec((0u8..6, 0u64..64, any::<u64>()), 4..40),
        sig_period in 1u64..16,
        pre_period in 2u64..24,
        delay in 0u64..6,
        seed in any::<u64>(),
    ) {
        use memsentry_repro::cpu::{
            EventAction, EventSchedule, SignalPolicy, StreamSource, TriggerKind,
        };

        const SCRATCH: u64 = 0x20_0000;
        let build = || {
            let mut p = Program::new();
            let mut b = FunctionBuilder::new("main");
            b.push(Inst::MovImm { dst: Reg::Rbx, imm: SCRATCH });
            for (op, slot, imm) in &ops {
                let offset = (slot * 8) as i64;
                match op {
                    0 => b.push(Inst::Store { src: Reg::Rax, addr: Reg::Rbx, offset }),
                    1 => b.push(Inst::Load { dst: Reg::Rax, addr: Reg::Rbx, offset }),
                    2 => b.push(Inst::AluImm { op: AluOp::Add, dst: Reg::Rax, imm: *imm }),
                    3 => b.push(Inst::AluImm { op: AluOp::And, dst: Reg::Rbx, imm: !0xfff | SCRATCH }),
                    4 => b.push(Inst::Call(FuncId(1))),
                    _ => b.push(Inst::Nop),
                };
            }
            b.push(Inst::Halt);
            p.add_function(b.finish());
            let mut helper = FunctionBuilder::new("helper");
            helper.push(Inst::AluImm { op: AluOp::Add, dst: Reg::R9, imm: 1 });
            helper.push(Inst::Ret);
            p.add_function(helper.finish());
            let mut handler = FunctionBuilder::new("handler");
            handler.push(Inst::Load { dst: Reg::R10, addr: Reg::Rbx, offset: 0 });
            handler.push(Inst::Syscall { nr: memsentry_repro::cpu::kernel::nr::SIGRETURN });
            handler.push(Inst::Halt);
            p.add_function(handler.finish());
            let mut sibling = FunctionBuilder::new("sibling");
            sibling.push(Inst::MovImm { dst: Reg::Rbx, imm: SCRATCH });
            sibling.push(Inst::Load { dst: Reg::Rax, addr: Reg::Rbx, offset: 8 });
            sibling.push(Inst::Halt);
            p.add_function(sibling.finish());
            p
        };
        let schedule = EventSchedule::with_streams(
            Vec::new(),
            vec![
                StreamSource::Every {
                    period: sig_period,
                    phase: seed % sig_period,
                    limit: None,
                    action: EventAction::Signal,
                },
                StreamSource::Every {
                    period: pre_period,
                    phase: 1,
                    limit: None,
                    action: EventAction::Preempt { to: 1, quantum: 2, scrub: true },
                },
                StreamSource::After {
                    trigger: TriggerKind::Signal,
                    delay,
                    action: EventAction::Write { addr: SCRATCH + 16, value: seed },
                },
            ],
        );
        let machine = || {
            let mut m = Machine::new(build());
            m.space.map_region(VirtAddr(SCRATCH), PAGE_SIZE, PageFlags::rw());
            m.spawn_thread(FuncId(3), [0; 3]);
            m.set_signal_policy(SignalPolicy { handler: FuncId(2), scrub: false });
            m.set_event_schedule(schedule.clone());
            m.set_fuel(5_000);
            m
        };
        // Run the reference twin straight to its end.
        let mut twin = machine();
        let undisturbed = twin.run();
        // Run the probed machine to the first quiescent mid-storm
        // boundary, rewind from further downstream, and resume.
        let mut m = machine();
        let mut mark = None;
        loop {
            if m.is_halted() || m.run_until(m.stats().instructions + 1).is_err() {
                break;
            }
            if m.signal_depth() == 0 && !m.preempt_active() && m.stats().instructions >= sig_period
            {
                mark = Some((m.snapshot(), m.event_schedule().cloned(), m.state_digest()));
                break;
            }
        }
        if let Some((snap, sched, digest)) = mark {
            let _ = m.run_until(m.stats().instructions + 40);
            m.restore(&snap);
            if let Some(s) = sched {
                m.set_event_schedule(s);
            }
            prop_assert_eq!(m.state_digest(), digest, "quiescent restore must be bit-exact");
            prop_assert_eq!(m.signal_depth(), 0);
            prop_assert!(!m.preempt_active());
            prop_assert_eq!(m.queued_signals(), 0);
            prop_assert_eq!(m.run(), undisturbed);
            prop_assert_eq!(m.state_digest(), twin.state_digest());
            prop_assert_eq!(m.stats(), twin.stats());
        }
    }

    /// Every technique's instrumentation is checker-clean on every
    /// workload profile and application: the isolation soundness analyses
    /// never false-positive on programs the shipped passes produce.
    /// (`instrument` already runs the checker internally; the explicit
    /// `check_program` call asserts the report on the final program.)
    #[test]
    fn instrumented_workloads_are_checker_clean(
        which in 0usize..19,
        app in 0usize..7,
        superblocks in 1u32..3,
    ) {
        use memsentry_repro::check::{check_program, AddressPolicy, CheckPolicy};
        use memsentry_repro::memsentry::{Application, Category, MemSentry, Technique};
        use memsentry_repro::workloads::{Workload, WorkloadSpec, SPEC2006};

        let w = Workload::build(WorkloadSpec { profile: SPEC2006[which], superblocks });
        let application = Application::ALL[app];
        let techniques = [
            Technique::Sfi,
            Technique::Mpx,
            Technique::Mpk,
            Technique::Vmfunc,
            Technique::Crypt,
            Technique::Sgx,
            Technique::MprotectBaseline,
            Technique::PageTableSwitch,
            Technique::InfoHiding,
        ];
        for technique in techniques {
            let fw = MemSentry::new(technique, 4096);
            let mut p = w.program.clone();
            fw.instrument(&mut p, application).unwrap();
            let policy = if technique.category() == Category::AddressBased {
                let mode = application.address_mode();
                CheckPolicy::address_checked(AddressPolicy {
                    loads: mode.loads,
                    stores: mode.stores,
                })
            } else {
                CheckPolicy::universal()
            };
            let report = check_program(&p, &policy);
            prop_assert!(
                report.is_clean(),
                "{technique} / {application:?}:\n{report}"
            );
        }
    }

    /// The interprocedural checker is monotone against the conservative
    /// every-call-is-hostile oracle (the old intraprocedural behavior):
    /// computing real per-function summaries only ever *removes* window
    /// and address findings, never adds them — fuzzed over random
    /// multi-function programs mixing blessed sequences, calls, kernel
    /// crossings and checked/unchecked accesses.
    #[test]
    fn summaries_only_remove_findings(
        funcs in proptest::collection::vec(
            proptest::collection::vec((0u8..8, 0u32..8), 1..10),
            1..4,
        ),
    ) {
        use memsentry_repro::check::{address, window, AddressPolicy, Summaries};

        let n = funcs.len() as u32;
        let mut p = Program::new();
        for (fi, ops) in funcs.iter().enumerate() {
            let mut b = FunctionBuilder::new(format!("f{fi}"));
            for (k, x) in ops {
                match k {
                    0 => {
                        // Blessed MPK open sequence.
                        b.push(Inst::RdPkru { dst: Reg::R9 });
                        b.push(Inst::AluImm { op: AluOp::And, dst: Reg::R9, imm: !0xc });
                        b.push(Inst::WrPkru { src: Reg::R9 });
                        b.push(Inst::MFence);
                    }
                    1 => {
                        // Blessed MPK close sequence.
                        b.push(Inst::RdPkru { dst: Reg::R9 });
                        b.push(Inst::AluImm { op: AluOp::Or, dst: Reg::R9, imm: 0xc });
                        b.push(Inst::WrPkru { src: Reg::R9 });
                        b.push(Inst::MFence);
                    }
                    2 => { b.push(Inst::Call(FuncId(x % n))); }
                    3 => { b.push(Inst::Syscall { nr: u64::from(x % 4) }); }
                    4 => {
                        // SFI-checked store.
                        b.push(Inst::AluImm {
                            op: AluOp::And,
                            dst: Reg::R11,
                            imm: 0x3fff_ffff_ffff,
                        });
                        b.push(Inst::Store { src: Reg::Rax, addr: Reg::R11, offset: 0 });
                    }
                    5 => { b.push(Inst::Store { src: Reg::Rax, addr: Reg::R11, offset: 8 }); }
                    6 => { b.push(Inst::MovImm { dst: Reg::Rax, imm: u64::from(*x) }); }
                    _ => { b.push(Inst::Nop); }
                }
            }
            b.push(if fi == 0 { Inst::Halt } else { Inst::Ret });
            p.add_function(b.finish());
        }
        let computed = Summaries::compute(&p);
        let conservative = Summaries::conservative(&p);
        let with = |s: &Summaries| {
            let mut v = window::check_windows_with(&p, s);
            v.extend(address::check_addresses_with(&p, AddressPolicy::READ_WRITE, s));
            v.into_iter().map(|f| (f.func, f.index, f.kind)).collect::<Vec<_>>()
        };
        let refined = with(&computed);
        let oracle = with(&conservative);
        for k in &refined {
            prop_assert!(
                oracle.contains(k),
                "finding {k:?} is absent under the conservative oracle"
            );
        }
    }

    /// print -> parse round-trips multi-function programs fuzzed over the
    /// interprocedural call shapes (direct and indirect calls, allocator
    /// calls, returns) the summary checker analyzes.
    #[test]
    fn call_shape_listing_roundtrip(
        funcs in proptest::collection::vec(
            proptest::collection::vec((0u8..6, 0usize..16, any::<u32>()), 1..12),
            1..5,
        ),
    ) {
        use memsentry_repro::ir::{parse_program, print::format_program, Function, InstNode};
        let n = funcs.len() as u32;
        let reg = |i: usize| Reg::ALL[i];
        let mut p = Program::new();
        for (fi, body) in funcs.iter().enumerate() {
            let mut f = Function::new(format!("f{fi}"));
            for (k, a, imm) in body {
                let inst = match k {
                    0 => Inst::Call(FuncId(imm % n)),
                    1 => Inst::CallIndirect { target: reg(*a) },
                    2 => Inst::Ret,
                    3 => Inst::Alloc { size: reg(*a) },
                    4 => Inst::Free { ptr: reg(*a) },
                    _ => Inst::Nop,
                };
                f.body.push(InstNode { inst, privileged: imm % 2 == 0 });
            }
            f.body.push(InstNode::plain(if fi == 0 { Inst::Halt } else { Inst::Ret }));
            p.add_function(f);
        }
        let text = format_program(&p);
        prop_assert_eq!(parse_program(&text).unwrap(), p);
    }
}

proptest! {
    /// The inline translation caches are invisible: over random looping
    /// programs whose op mix includes in-block space mutators (`wrpkru`,
    /// `vmfunc` EPT switches, `mprotect` syscalls — the instructions the
    /// protection techniques actually emit), random event storms
    /// (signals, thread preemptions, attacker writes), and every
    /// address-based instrumentation flavour, an IC-enabled machine and
    /// an `MSENTRY_NO_INLINE_CACHE=1` machine agree exactly. Three
    /// phases: (1) full batched `run`s — the only mode in which
    /// `exec_chain` gets a budget big enough to probe and warm the IC
    /// slots, so the loop's later trips revalidate warm entries right
    /// after an in-block mutation went by — compared on outcome, `Stats`,
    /// cycle bits and digest; (2) per-boundary lockstep with externally
    /// driven mutations between instructions (`mprotect`,
    /// `pkey_mprotect`, raw PKRU rewrites, `add_view`/`switch_view`,
    /// hypervisor-side EPT edits, TLB flushes), digests compared at every
    /// boundary; (3) `Recording::seek` — whose gap re-execution re-enters
    /// compiled blocks mid-stream with restore-orphaned slots — pinned to
    /// the exact digests of a linear no-IC run.
    #[test]
    fn inline_cache_is_invisible_under_mutation_storms(
        ops in proptest::collection::vec((0u8..10, 0u64..64, any::<u64>()), 1..40),
        events in proptest::collection::vec((0u8..3, 0u64..120), 0..4),
        muts in proptest::collection::vec((0u8..8, 0u64..200), 0..8),
        probes in proptest::collection::vec(0u64..300, 1..6),
        flavour in 0u8..4,
    ) {
        use memsentry_repro::cpu::{
            Event, EventAction, EventSchedule, MachineConfig, Recording, SignalPolicy,
        };
        use memsentry_repro::mmu::ept::EptEntry;
        use memsentry_repro::mmu::{EptSet, Prot};

        const SCRATCH: u64 = 0x20_0000;
        const SCRATCH2: u64 = 0x21_0000;
        let build = || {
            let mut p = Program::new();
            let mut b = FunctionBuilder::new("main");
            b.push(Inst::MovImm { dst: Reg::Rbx, imm: SCRATCH });
            // A counted loop re-executes every compiled op, so IC slots
            // warm on trip one and must serve (or soundly refuse) hits on
            // the later trips that the mutations interleave with. `Rbp`
            // and `R12` are the live-across-instrumentation registers.
            b.push(Inst::MovImm { dst: Reg::Rbp, imm: 0 });
            b.push(Inst::MovImm { dst: Reg::R12, imm: 4 });
            let top = b.new_label();
            b.bind(top);
            for (op, slot, imm) in &ops {
                let offset = (slot * 8) as i64;
                match op {
                    0 => {
                        b.push(Inst::Store { src: Reg::Rax, addr: Reg::Rbx, offset });
                    }
                    1 => {
                        b.push(Inst::Load { dst: Reg::Rax, addr: Reg::Rbx, offset });
                    }
                    2 => {
                        b.push(Inst::AluImm { op: AluOp::Add, dst: Reg::Rax, imm: *imm });
                    }
                    3 => {
                        b.push(Inst::AluImm { op: AluOp::And, dst: Reg::Rbx, imm: !0xfff | SCRATCH });
                    }
                    4 => {
                        b.push(Inst::Lea { dst: Reg::Rcx, base: Reg::Rbx, offset });
                    }
                    5 => {
                        b.push(Inst::Call(FuncId(1)));
                    }
                    6 => {
                        b.push(Inst::Nop);
                    }
                    7 => {
                        // In-block PKRU rewrite: toggles an unused key's
                        // bits, so access verdicts are unchanged but every
                        // warm IC entry's PKRU stamp goes stale mid-chain.
                        b.push(Inst::MovImm {
                            dst: Reg::Rcx,
                            imm: if slot % 2 == 0 { 0 } else { 0b11 << 30 },
                        });
                        b.push(Inst::WrPkru { src: Reg::Rcx });
                    }
                    8 => {
                        b.push(Inst::VmFunc { eptp: (slot % 2) as u32 });
                    }
                    _ => {
                        // In-block mprotect syscall on the page the
                        // program never touches: a pure generation bump.
                        b.push(Inst::MovImm { dst: Reg::Rdi, imm: SCRATCH2 });
                        b.push(Inst::MovImm { dst: Reg::Rsi, imm: PAGE_SIZE });
                        b.push(Inst::MovImm { dst: Reg::Rdx, imm: 2 });
                        b.push(Inst::Syscall { nr: memsentry_repro::cpu::kernel::nr::MPROTECT });
                    }
                };
            }
            b.push(Inst::AluImm { op: AluOp::Add, dst: Reg::Rbp, imm: 1 });
            b.push(Inst::JmpIf { cond: Cond::Ne, a: Reg::Rbp, b: Reg::R12, target: top });
            b.push(Inst::Halt);
            p.add_function(b.finish());
            let mut helper = FunctionBuilder::new("helper");
            helper.push(Inst::AluImm { op: AluOp::Add, dst: Reg::R9, imm: 1 });
            helper.push(Inst::Ret);
            p.add_function(helper.finish());
            let mut handler = FunctionBuilder::new("handler");
            handler.push(Inst::Load { dst: Reg::R10, addr: Reg::Rbx, offset: 0 });
            handler.push(Inst::Syscall { nr: memsentry_repro::cpu::kernel::nr::SIGRETURN });
            handler.push(Inst::Halt);
            p.add_function(handler.finish());
            let mut sibling = FunctionBuilder::new("sibling");
            sibling.push(Inst::MovImm { dst: Reg::Rbx, imm: SCRATCH });
            sibling.push(Inst::Load { dst: Reg::Rax, addr: Reg::Rbx, offset: 8 });
            sibling.push(Inst::Store { src: Reg::Rax, addr: Reg::Rbx, offset: 8 });
            sibling.push(Inst::Halt);
            p.add_function(sibling.finish());
            match flavour {
                0 => {}
                1 => AddressBasedPass::new(AddressKind::Sfi, InstrumentMode::READ_WRITE)
                    .run(&mut p).unwrap(),
                2 => AddressBasedPass::new(AddressKind::Mpx, InstrumentMode::READ_WRITE)
                    .run(&mut p).unwrap(),
                _ => AddressBasedPass::new(AddressKind::MpxDual, InstrumentMode::READ_WRITE)
                    .run(&mut p).unwrap(),
            }
            p
        };
        let schedule = EventSchedule::new(
            events
                .iter()
                .map(|&(kind, at)| Event {
                    at,
                    action: match kind {
                        0 => EventAction::Signal,
                        1 => EventAction::Write { addr: SCRATCH + 16, value: at },
                        _ => EventAction::Preempt { to: 1, quantum: 3, scrub: at % 2 == 0 },
                    },
                })
                .collect(),
        );
        let machine = |inline_cache: bool| {
            let mut m = Machine::with_config(
                build(),
                MachineConfig { threaded: true, inline_cache, ..MachineConfig::default() },
            );
            m.space.map_region(VirtAddr(SCRATCH), PAGE_SIZE, PageFlags::rw());
            m.space.map_region(VirtAddr(SCRATCH2), PAGE_SIZE, PageFlags::rw());
            m.space.install_ept(EptSet::new(2, true));
            m.set_in_vm(true);
            m.set_syscall_passthrough(true);
            m.spawn_thread(FuncId(3), [0; 3]);
            m.set_signal_policy(SignalPolicy { handler: FuncId(2), scrub: false });
            m.set_event_schedule(schedule.clone());
            m.set_fuel(5_000);
            m
        };
        // Mutations are applied from outside the run, between retired
        // instructions, identically to both machines. Each either bumps
        // the mutation generation, rewrites PKRU, or rewrites memory the
        // program observes — the three ways a cached translation can go
        // stale.
        let apply = |m: &mut Machine, kind: u8, at: u64| match kind {
            0 => {
                m.space.mprotect(VirtAddr(SCRATCH), PAGE_SIZE, Prot::ReadWrite);
            }
            1 => {
                m.space.mprotect(VirtAddr(SCRATCH2), PAGE_SIZE, Prot::Read);
            }
            2 => {
                m.space.pkey_mprotect(VirtAddr(SCRATCH), PAGE_SIZE, 1);
            }
            3 => {
                // wrpkru toggling an unused key's bits: access verdicts
                // are unchanged but every cached PKRU stamp goes stale.
                let pkru = m.space.pkru;
                m.space.pkru = Pkru(pkru.0 ^ (0b11 << 30));
            }
            4 => {
                let v = m.space.add_view();
                m.space.switch_view(v);
            }
            5 => {
                if let Some(set) = m.space.ept_mut() {
                    if at % 2 == 0 {
                        set.vmfunc_switch((at as usize / 2) % 2);
                    } else {
                        set.ept_mut(1).map(0x900 + at, EptEntry::identity(0x900 + at));
                    }
                }
            }
            6 => {
                m.space.flush_tlb();
            }
            _ => {
                let _ = m.space.write(VirtAddr(SCRATCH + 24), &at.to_le_bytes());
            }
        };
        // Phase 1: full batched runs, where the compiled chains actually
        // warm and revalidate the inline caches across loop trips.
        let mut fa = machine(true);
        let oa = fa.run();
        let mut fb = machine(false);
        prop_assert_eq!(oa, fb.run());
        prop_assert_eq!(fa.stats(), fb.stats());
        prop_assert_eq!(fa.cycles().to_bits(), fb.cycles().to_bits());
        prop_assert_eq!(fa.state_digest(), fb.state_digest());
        // Phase 2: per-boundary lockstep with external mutations.
        let mut a = machine(true);
        let mut b = machine(false);
        loop {
            prop_assert_eq!(a.state_digest(), b.state_digest());
            if a.is_halted() {
                break;
            }
            let n = a.stats().instructions;
            for &(kind, at) in &muts {
                if at == n {
                    apply(&mut a, kind, at);
                    apply(&mut b, kind, at);
                }
            }
            let ra = a.run_until(n + 1);
            let rb = b.run_until(n + 1);
            prop_assert_eq!(ra.clone(), rb);
            if ra.is_err() {
                break;
            }
        }
        prop_assert_eq!(a.state_digest(), b.state_digest());
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.cycles().to_bits(), b.cycles().to_bits());

        // Phase 3: seeks re-enter compiled blocks mid-stream after
        // `restore` orphaned every cache slot; each must land on the
        // exact digest the no-IC linear run retired at that boundary.
        let mut c = machine(true);
        let rec = Recording::capture(&mut c, 3, &[]);
        let mut d = machine(false);
        let mut digests = vec![d.state_digest()];
        loop {
            if d.is_halted() {
                break;
            }
            let n = d.stats().instructions;
            if d.run_until(n + 1).is_err() {
                break;
            }
            digests.push(d.state_digest());
        }
        prop_assert_eq!(digests.len() as u64, rec.boundaries() + 1);
        for &p in &probes {
            let boundary = p % (rec.boundaries() + 1);
            prop_assert!(rec.seek(&mut c, boundary).is_ok());
            prop_assert_eq!(c.state_digest(), digests[boundary as usize]);
        }
    }
}
