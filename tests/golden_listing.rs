//! Golden-file integration: a textual listing is parsed, verified,
//! defended, instrumented and executed — the whole toolchain driven from
//! text, like the `msentry` CLI does.

use memsentry_repro::cpu::{Machine, Trap};
use memsentry_repro::defenses::ShadowStack;
use memsentry_repro::ir::{parse_program, print::format_program, verify, CodeAddr, FuncId, Reg};
use memsentry_repro::memsentry::{Application, MemSentry, Technique};
use memsentry_repro::passes::Pass;

const LISTING: &str = include_str!("data/shadow_demo.ms");

#[test]
fn golden_listing_parses_verifies_and_runs() {
    let p = parse_program(LISTING).unwrap();
    verify(&p).unwrap();
    assert_eq!(p.functions.len(), 3);
    // Benign run (r12 = 0 skips the smash).
    let mut m = Machine::new(p);
    assert_eq!(m.run().expect_exit(), 1);
}

#[test]
fn golden_listing_roundtrips_through_the_printer() {
    let p = parse_program(LISTING).unwrap();
    let reparsed = parse_program(&format_program(&p)).unwrap();
    assert_eq!(reparsed, p);
}

#[test]
fn golden_listing_hijack_and_defense() {
    // Arm the smash: r12 = gadget pointer.
    let gadget = CodeAddr::entry(FuncId(2)).encode();

    // Undefended: hijacked.
    let p = parse_program(LISTING).unwrap();
    let mut m = Machine::new(p.clone());
    m.set_reg(Reg::R12, gadget);
    assert_eq!(m.run().expect_exit(), 0x666);

    // Shadow stack + MPK via the framework: detected.
    let fw = MemSentry::new(Technique::Mpk, 4096);
    let shadow = ShadowStack::new(fw.layout());
    let mut defended = p;
    shadow.run(&mut defended).unwrap();
    fw.instrument(&mut defended, Application::ProgramData)
        .unwrap();
    let mut m = Machine::new(defended);
    fw.prepare_machine(&mut m).unwrap();
    fw.write_region(&mut m, 0, &(fw.layout().base + 8).to_le_bytes());
    m.set_reg(Reg::R12, gadget);
    assert_eq!(
        m.run().expect_trap(),
        &Trap::DefenseAbort {
            defense: "shadow-stack"
        }
    );
}
