//! Record-replay equivalence over the golden listings.
//!
//! The `crates/cpu` unit tests pin the [`Recording`] semantics on
//! synthetic programs; these root-level tests drive the same recorder
//! over the shipped `.ms` listings — raw and framework-instrumented —
//! and assert the guarantees the `msentry replay` CLI builds on:
//!
//! * **From-start equality**: seeking any boundary of a checkpointed
//!   recording yields a machine bit-identical (stats, cycles, state
//!   digest) to a fresh clone run straight to that boundary, with or
//!   without injected events.
//! * **Spacing independence**: a dense checkpoint stream and a single
//!   start snapshot replay to identical states at every boundary.
//! * **Fuel exactness**: fuel is a retired-instruction budget — a run
//!   given exactly its instruction count completes, one less traps
//!   `OutOfFuel`, and the truncated recording stays seekable with a
//!   clean past-the-end error after its last boundary.
//! * **Crash consistency**: restarting from the nearest checkpoint at
//!   every boundary recovers the reference state bit-exactly.

use memsentry_repro::cpu::{
    crash_sweep, EventAction, EventSchedule, Machine, MachineConfig, Recording, ReplayError,
    RunOutcome, Trap,
};
use memsentry_repro::ir::{parse_program, Program};
use memsentry_repro::memsentry::{Application, MemSentry, Technique};

fn listing(name: &str) -> Program {
    let path = format!("{}/tests/data/{name}", env!("CARGO_MANIFEST_DIR"));
    parse_program(&std::fs::read_to_string(path).expect("golden listing"))
        .expect("golden listing parses")
}

/// Everything a boundary comparison observes: retired instructions,
/// simulated cycles, and the full machine-state digest.
fn observe(m: &Machine) -> (u64, f64, u64) {
    (m.stats().instructions, m.cycles(), m.state_digest())
}

/// An MPK shadow-stack machine over the golden listing, the same
/// configuration the snapshot/restore tests pin.
fn mpk_machine() -> (Machine, MemSentry) {
    let mut program = listing("shadow_demo.ms");
    let fw = MemSentry::new(Technique::Mpk, 4096);
    fw.instrument(&mut program, Application::ShadowStack)
        .expect("instruments");
    let mut m = Machine::new(program);
    fw.prepare_machine(&mut m).expect("prepares");
    (m, fw)
}

/// A fresh machine identical to `build()`'s output, run straight to
/// `boundary` under `events`.
fn fresh_at(
    build: &dyn Fn() -> Machine,
    events: &[memsentry_repro::cpu::Event],
    boundary: u64,
) -> (u64, f64, u64) {
    let mut m = build();
    if !events.is_empty() {
        m.set_event_schedule(EventSchedule::new(events.to_vec()));
    }
    m.run_until(boundary).expect("clean prefix");
    observe(&m)
}

#[test]
fn golden_listings_replay_bit_identically_at_every_boundary() {
    for name in ["shadow_demo.ms", "privileged_demo.ms", "good_interproc.ms"] {
        let program = listing(name);
        let build = {
            let program = program.clone();
            move || Machine::new(program.clone())
        };
        let mut m = build();
        let rec = Recording::capture(&mut m, 4, &[]);
        for boundary in 0..=rec.boundaries() {
            rec.seek(&mut m, boundary).expect("in range");
            assert_eq!(
                observe(&m),
                fresh_at(&build, &[], boundary),
                "{name}: replay diverged at boundary {boundary}"
            );
        }
    }
}

#[test]
fn instrumented_run_replays_identically_regardless_of_spacing() {
    let build = || mpk_machine().0;
    let (mut dense_m, _fw) = mpk_machine();
    let dense = Recording::capture(&mut dense_m, 8, &[]);
    let (mut start_m, _fw) = mpk_machine();
    let from_start = Recording::capture(&mut start_m, u64::MAX, &[]);
    assert_eq!(dense.boundaries(), from_start.boundaries());
    assert_eq!(from_start.checkpoint_count(), 1, "only the start snapshot");
    assert!(dense.checkpoint_count() > 1, "dense stream checkpoints");
    for boundary in 0..=dense.boundaries() {
        dense.seek(&mut dense_m, boundary).expect("in range");
        from_start.seek(&mut start_m, boundary).expect("in range");
        let reference = fresh_at(&build, &[], boundary);
        assert_eq!(observe(&dense_m), reference, "dense @ {boundary}");
        assert_eq!(observe(&start_m), reference, "from-start @ {boundary}");
    }
}

#[test]
fn injected_events_replay_exactly_from_any_checkpoint() {
    // An asynchronous attacker write into the safe region mid-run: the
    // recording must reproduce both the pre-event prefix and the
    // corrupted suffix from whichever checkpoint serves the seek.
    let (m0, fw) = mpk_machine();
    drop(m0);
    let events = vec![memsentry_repro::cpu::Event {
        at: 5,
        action: EventAction::Write {
            addr: fw.layout().base,
            value: 0xdead_beef,
        },
    }];
    let build = || mpk_machine().0;
    let mut m = build();
    let rec = Recording::capture(&mut m, 4, &events);
    assert!(rec.boundaries() > 6, "event lands inside the run");
    for boundary in 0..=rec.boundaries() {
        rec.seek(&mut m, boundary).expect("in range");
        assert_eq!(
            observe(&m),
            fresh_at(&build, &events, boundary),
            "injected replay diverged at boundary {boundary}"
        );
    }
}

#[test]
fn fuel_is_an_exact_retired_instruction_budget() {
    // The full run's instruction count is the budget that just suffices.
    let (mut m, _fw) = mpk_machine();
    let n = match m.run() {
        RunOutcome::Exited(_) => m.stats().instructions,
        RunOutcome::Trapped(t) => panic!("golden listing trapped: {t}"),
    };
    assert!(n > 1);

    let exact = {
        let (mut m, _fw) = mpk_machine();
        m.set_fuel(n);
        m.run()
    };
    assert!(
        matches!(exact, RunOutcome::Exited(_)),
        "fuel == retired count must complete: {exact:?}"
    );

    let (mut short, _fw) = mpk_machine();
    short.set_fuel(n - 1);
    assert_eq!(short.run(), RunOutcome::Trapped(Trap::OutOfFuel));
    assert_eq!(
        short.stats().instructions,
        n - 1,
        "out-of-fuel stops exactly at the budget"
    );

    // The truncated run records n-1 boundaries, every one seekable; one
    // past the end is a clean typed error, not a panic.
    let (mut rec_m, _fw) = mpk_machine();
    rec_m.set_fuel(n - 1);
    let rec = Recording::capture(&mut rec_m, 4, &[]);
    assert!(matches!(
        rec.outcome(),
        RunOutcome::Trapped(Trap::OutOfFuel)
    ));
    assert_eq!(rec.boundaries(), n - 1);
    rec.seek(&mut rec_m, n - 1).expect("exhaustion boundary");
    assert_eq!(rec_m.stats().instructions, n - 1);
    assert_eq!(
        rec.seek(&mut rec_m, n),
        Err(ReplayError::PastEnd {
            requested: n,
            end: n - 1,
        })
    );
}

#[test]
fn recordings_are_engine_independent() {
    // The threaded-code engine and the per-instruction stepper must feed
    // `Recording` identical checkpoint streams: capturing the same
    // instrumented run (with a hostile mid-run write) under both engines
    // and seeking every boundary must observe bit-identical machines —
    // same retired count, cycle bits, and full `state_digest`.
    let build = |threaded: bool| {
        let mut program = listing("shadow_demo.ms");
        let fw = MemSentry::new(Technique::Mpk, 4096);
        fw.instrument(&mut program, Application::ShadowStack)
            .expect("instruments");
        let mut m = Machine::with_config(
            program,
            MachineConfig {
                threaded,
                ..MachineConfig::default()
            },
        );
        fw.prepare_machine(&mut m).expect("prepares");
        (m, fw)
    };
    let (mut threaded_m, fw) = build(true);
    let events = vec![memsentry_repro::cpu::Event {
        at: 5,
        action: EventAction::Write {
            addr: fw.layout().base,
            value: 0xdead_beef,
        },
    }];
    let (mut stepped_m, _fw) = build(false);
    let threaded = Recording::capture(&mut threaded_m, 4, &events);
    let stepped = Recording::capture(&mut stepped_m, 4, &events);
    assert_eq!(threaded.outcome(), stepped.outcome());
    assert_eq!(threaded.boundaries(), stepped.boundaries());
    for boundary in 0..=threaded.boundaries() {
        threaded.seek(&mut threaded_m, boundary).expect("in range");
        stepped.seek(&mut stepped_m, boundary).expect("in range");
        assert_eq!(
            observe(&threaded_m),
            observe(&stepped_m),
            "engines diverged at boundary {boundary}"
        );
    }
}

#[test]
fn fuel_zero_retires_nothing() {
    let program = listing("shadow_demo.ms");
    let mut m = Machine::with_config(
        program,
        MachineConfig {
            fuel: 0,
            ..MachineConfig::default()
        },
    );
    assert_eq!(m.run(), RunOutcome::Trapped(Trap::OutOfFuel));
    assert_eq!(m.stats().instructions, 0);
}

#[test]
fn crash_sweep_recovers_every_golden_boundary_bit_exactly() {
    // Raw listing and instrumented machine, clean and with an injected
    // hostile write: dropping the live machine at any boundary and
    // restarting from the nearest checkpoint must recover exactly.
    let program = listing("shadow_demo.ms");
    let mut m = Machine::new(program);
    let rec = Recording::capture(&mut m, 4, &[]);
    let report = crash_sweep(&rec, &mut m).expect("sweep completes");
    assert!(report.is_consistent(), "{:?}", report.violations);

    let (mut m, fw) = mpk_machine();
    let events = vec![memsentry_repro::cpu::Event {
        at: 5,
        action: EventAction::Write {
            addr: fw.layout().base,
            value: 0xdead_beef,
        },
    }];
    let rec = Recording::capture(&mut m, 4, &events);
    let report = crash_sweep(&rec, &mut m).expect("sweep completes");
    assert!(report.is_consistent(), "{:?}", report.violations);
    assert_eq!(report.boundaries, rec.boundaries());
}
