//! Smoke tests over the evaluation harness: every table and figure
//! regenerates, with the qualitative relationships the paper reports.

use memsentry_bench::extras::{crypt_scaling, mprotect_baseline, safestack_study};
use memsentry_bench::figures::{figure3, figure4, figure5, figure6};
use memsentry_bench::measure::Session;
use memsentry_bench::tables::{render_table4, table1, table2, table3, table4};
use memsentry_repro::workloads::BenchProfile;

const SB: u32 = 5;

#[test]
fn every_table_renders() {
    assert!(table1().contains("CPI"));
    assert!(table2().contains("program data"));
    assert!(table3().contains("VMFUNC"));
    let t4 = render_table4(&table4());
    assert!(t4.contains("vmfunc"));
    assert!(t4.contains("147"));
}

#[test]
fn every_figure_renders_19_rows() {
    let s = Session::new();
    for fig in [
        figure3(&s, SB).unwrap(),
        figure4(&s, SB).unwrap(),
        figure5(&s, SB).unwrap(),
        figure6(&s, SB).unwrap(),
    ] {
        assert_eq!(fig.rows.len(), 19, "{}", fig.title);
        assert!(fig.geomeans.iter().all(|&g| g >= 1.0), "{}", fig.title);
        assert!(!fig.render().is_empty());
    }
    // The whole run shares the 19 baseline simulations.
    assert_eq!(s.baseline_runs(), 19);
}

#[test]
fn headline_comparisons_hold() {
    let s = Session::new();
    // MPX beats SFI for address-based isolation (paper abstract:
    // "up to 7.5% vs 21.6% for SFI" per-benchmark, geomeans 12 vs 17.1).
    let f3 = figure3(&s, SB).unwrap();
    for pair in [(0, 1), (2, 3), (4, 5)] {
        assert!(
            f3.geomeans[pair.0] < f3.geomeans[pair.1],
            "{}: MPX {} !< SFI {}",
            f3.title,
            f3.geomeans[pair.0],
            f3.geomeans[pair.1]
        );
    }
    // Domain-based ordering flips with switch frequency: at call/ret MPK
    // is best and VMFUNC worst; at syscalls crypt is worst (xmm loss).
    let f4 = figure4(&s, SB).unwrap();
    assert!(f4.geomeans[0] < f4.geomeans[2] && f4.geomeans[2] < f4.geomeans[1]);
    let f6 = figure6(&s, SB * 4).unwrap();
    assert!(f6.geomeans[0] < f6.geomeans[1] && f6.geomeans[1] < f6.geomeans[2]);
}

#[test]
fn address_based_beats_domain_based_at_call_ret_frequency() {
    let s = Session::new();
    // The paper's §6.3 conclusion: frequent switches favor address-based.
    let f3 = figure3(&s, SB).unwrap();
    let f4 = figure4(&s, SB).unwrap();
    let mpx_w = f3.geomeans[0];
    let mpk_callret = f4.geomeans[0];
    assert!(
        mpx_w < mpk_callret,
        "MPX-w {mpx_w} should beat MPK at call/ret {mpk_callret}"
    );
}

#[test]
fn mprotect_baseline_in_paper_band() {
    let (geomean, _, _) = mprotect_baseline(&Session::new(), SB).unwrap();
    assert!(
        (10.0..80.0).contains(&geomean),
        "paper: 20-50x; measured {geomean}"
    );
}

#[test]
fn crypt_scaling_near_paper_15x_at_1kib() {
    let p = BenchProfile::by_name("mcf").unwrap();
    let points = crypt_scaling(&Session::new(), p, SB, &[16, 1024]).unwrap();
    let at_1k = points[1].1;
    assert!(
        (8.0..30.0).contains(&at_1k),
        "paper: ~15x at 1 KiB; measured {at_1k}"
    );
}

#[test]
fn safestack_equals_write_instrumentation() {
    let s = Session::new();
    let (mpx_w, sfi_w) = safestack_study(&s, SB).unwrap();
    let f3 = figure3(&s, SB).unwrap();
    assert!((mpx_w - f3.geomeans[0]).abs() < 0.02);
    assert!((sfi_w - f3.geomeans[1]).abs() < 0.02);
}
