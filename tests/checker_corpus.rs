//! Table-driven `msentry check` verdicts for every listing in
//! `tests/data/` — the mutation corpus the CI `checker` job replays.
//!
//! Every `.ms` file must have a row here (asserted by reading the
//! directory), so adding a corpus file without recording its expected
//! verdict fails the suite rather than silently going untested.

use std::process::Command;

const MSENTRY: &str = env!("CARGO_BIN_EXE_msentry");
const DATA: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data");

/// Expected verdict for one corpus file.
struct Case {
    file: &'static str,
    /// Extra `msentry check` arguments (address mode for the files whose
    /// defect only exists under address checking).
    args: &'static [&'static str],
    /// Whether the checker must accept the listing.
    clean: bool,
    /// Snippets the combined stdout+stderr must contain.
    expect: &'static [&'static str],
}

const CASES: &[Case] = &[
    Case {
        file: "shadow_demo.ms",
        args: &[],
        clean: true,
        expect: &["3 functions"],
    },
    Case {
        file: "privileged_demo.ms",
        args: &[],
        clean: true,
        expect: &["ok"],
    },
    Case {
        file: "good_interproc.ms",
        args: &[],
        clean: true,
        expect: &["2 functions"],
    },
    Case {
        file: "bad_stray_wrpkru.ms",
        args: &[],
        clean: false,
        expect: &["stray-domain-switch", "fn0 <main> @1"],
    },
    Case {
        file: "bad_clobber.ms",
        args: &[],
        clean: false,
        expect: &["clobbered-live-register", "rbx"],
    },
    Case {
        file: "bad_missing_mask.ms",
        args: &["--address", "w"],
        clean: false,
        expect: &["unchecked-store", "rbx"],
    },
    Case {
        file: "bad_unclosed_domain.ms",
        args: &[],
        clean: false,
        expect: &["domain-leak", "fn0 <main> @5", "window opened @0"],
    },
    Case {
        file: "bad_interproc_leak.ms",
        args: &[],
        clean: false,
        expect: &["domain-leak", "fn1 <opener> @4", "`ret`"],
    },
    Case {
        file: "bad_interproc_reopen.ms",
        args: &[],
        clean: false,
        expect: &[
            "call to fn1 <closer>, which is not open-safe",
            "unmatched-close",
            "fn1 <closer> @8",
        ],
    },
    Case {
        file: "bad_interproc_indirect.ms",
        args: &["--address", "rw"],
        clean: false,
        expect: &["unchecked-store", "r11", "@6"],
    },
    Case {
        file: "bad_syscall_clobber.ms",
        args: &["--address", "w"],
        clean: false,
        expect: &["unchecked-store", "rdi", "@6"],
    },
];

fn run_check(file: &str, args: &[&str]) -> (bool, String) {
    let out = Command::new(MSENTRY)
        .arg("check")
        .arg(format!("{DATA}/{file}"))
        .args(args)
        .output()
        .expect("spawn msentry");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn every_corpus_file_has_a_recorded_verdict() {
    let mut on_disk: Vec<String> = std::fs::read_dir(DATA)
        .expect("read tests/data")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".ms"))
        .collect();
    on_disk.sort();
    let mut in_table: Vec<String> = CASES.iter().map(|c| c.file.to_string()).collect();
    in_table.sort();
    assert_eq!(
        on_disk, in_table,
        "tests/data and the verdict table must cover the same files"
    );
}

#[test]
fn corpus_verdicts_match() {
    for case in CASES {
        let (ok, text) = run_check(case.file, case.args);
        assert_eq!(
            ok, case.clean,
            "{}: expected clean={} but got:\n{text}",
            case.file, case.clean
        );
        for needle in case.expect {
            assert!(
                text.contains(needle),
                "{}: missing '{needle}' in:\n{text}",
                case.file
            );
        }
    }
}

#[test]
fn bad_files_stay_bad_without_address_mode_only_when_windowed() {
    // The address-mode corpus files are well-formed programs absent the
    // address policy; the windowed corpus files are wrong under the
    // default policy already.
    for file in ["bad_interproc_indirect.ms", "bad_syscall_clobber.ms"] {
        let (ok, text) = run_check(file, &[]);
        assert!(ok, "{file} must pass the default policy:\n{text}");
    }
}
