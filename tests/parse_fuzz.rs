//! The IR parser never panics on corrupted listings.
//!
//! `tests/properties.rs::parser_is_panic_free` fuzzes over short random
//! ASCII; these tests start from the *real* listings under `tests/data/`
//! (including the deliberately-broken `bad_*.ms` mutation corpus) and
//! corrupt them the way truncated files, bad merges and bit flips do —
//! every prefix, deterministic byte mutations, and line-level edits.
//! Corrupted listings reach much deeper parser states than random text:
//! almost every line looks like an instruction. The parser must return
//! `Err`, never panic, and anything it accepts must still round-trip
//! through the printer.

use std::fs;
use std::path::PathBuf;

use memsentry_repro::ir::{parse_program, print::format_program};

/// Every `.ms` listing checked into `tests/data/`.
fn corpus() -> Vec<(PathBuf, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data");
    let mut listings: Vec<(PathBuf, String)> = fs::read_dir(&dir)
        .expect("tests/data exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ms"))
        .map(|p| {
            let text = fs::read_to_string(&p).expect("readable listing");
            (p, text)
        })
        .collect();
    listings.sort();
    assert!(!listings.is_empty(), "corpus must not be empty");
    listings
}

/// Parses, and re-parses the printed form of anything accepted. The
/// value of these tests is that this returns at all (no panic).
fn exercise(text: &str) {
    if let Ok(p) = parse_program(text) {
        let printed = format_program(&p);
        let reparsed = parse_program(&printed).expect("printer output parses");
        assert_eq!(reparsed, p, "accepted listings round-trip");
    }
}

/// A tiny deterministic xorshift generator, so failures reproduce.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

#[test]
fn every_truncation_of_every_listing_is_survivable() {
    for (_, text) in corpus() {
        for cut in 0..=text.len() {
            if text.is_char_boundary(cut) {
                exercise(&text[..cut]);
            }
        }
    }
}

#[test]
fn byte_mutations_are_survivable() {
    for (path, text) in corpus() {
        let mut rng = XorShift(0x5eed ^ text.len() as u64);
        for _ in 0..500 {
            let mut bytes = text.clone().into_bytes();
            // One to three point mutations: overwrite, insert or delete.
            for _ in 0..1 + rng.below(3) {
                let i = rng.below(bytes.len());
                match rng.below(3) {
                    0 => bytes[i] = (rng.next() & 0xff) as u8,
                    1 => bytes.insert(i, (rng.next() & 0x7f) as u8),
                    _ => {
                        bytes.remove(i);
                    }
                }
            }
            let mutated = String::from_utf8_lossy(&bytes);
            exercise(&mutated);
        }
        // Parsers often index into tokens; make sure a pure-garbage tail
        // after a valid prefix is survivable too.
        let mut tail = text.clone();
        tail.push_str("\n\u{FFFD}\0\t mov [[[");
        exercise(&tail);
        assert!(!path.as_os_str().is_empty());
    }
}

#[test]
fn line_level_edits_are_survivable() {
    let listings = corpus();
    for (_, text) in &listings {
        let lines: Vec<&str> = text.lines().collect();
        let mut rng = XorShift(0xbad5eed ^ lines.len() as u64);
        for _ in 0..200 {
            let mut edited: Vec<&str> = lines.clone();
            match rng.below(4) {
                // Drop a line (loses labels, headers, terminators).
                0 => {
                    edited.remove(rng.below(edited.len()));
                }
                // Duplicate a line (duplicate labels and headers).
                1 => {
                    let i = rng.below(edited.len());
                    edited.insert(i, edited[i]);
                }
                // Swap two lines (instructions before their header).
                2 => {
                    let (i, j) = (rng.below(edited.len()), rng.below(edited.len()));
                    edited.swap(i, j);
                }
                // Splice in a line from another corpus file.
                _ => {
                    let (_, donor) = &listings[rng.below(listings.len())];
                    let donor_lines: Vec<&str> = donor.lines().collect();
                    let i = rng.below(edited.len());
                    edited[i] = donor_lines[rng.below(donor_lines.len())];
                }
            }
            exercise(&edited.join("\n"));
        }
    }
}
