//! Snapshot/restore determinism of the simulated machine.
//!
//! The fault-injection campaign (`memsentry_attacks::campaign`) leans on
//! `Machine::snapshot`/`restore` to sweep one decoded program across
//! thousands of injection points, so a restored machine must be
//! *bit-identical* to the original: same retirement order, same cycle
//! accounting, same architectural and protection-domain state. These are
//! the root-level guarantees:
//!
//! * **Golden**: an MPK-instrumented listing and a calibrated workload
//!   both replay to the exact same exit code, statistics and cycle count
//!   after a mid-run restore, any number of times.
//! * **Isolation**: events injected after a snapshot (and the damage they
//!   do) never leak through `restore` — the schedule is cleared and the
//!   memory image rewound.
//! * **Sweep** (randomized): snapshots taken at deterministic
//!   pseudo-random boundaries all replay identically, the exact access
//!   pattern the campaign performs.
//! * **Interleaving** (property): restores of two or more snapshots in
//!   any order — the access pattern of the record-replay `seek` path —
//!   each land bit-identical to a fresh clone stepped straight to that
//!   boundary, no matter what ran (or was restored) in between.
//! * **Memo purity** (property): the inline translation caches and the
//!   same-line cache memo are pure accelerators — excluded from digests
//!   and snapshots, and orphaned by `restore` even when the abandoned
//!   timeline warmed them under newer generations or a different PKRU.

use proptest::prelude::*;

use memsentry_repro::cpu::{EventAction, EventSchedule, ExecStats, Machine, MachineConfig};
use memsentry_repro::mmu::{Pkru, Prot, VirtAddr, PAGE_SIZE};
use memsentry_repro::ir::parse_program;
use memsentry_repro::memsentry::{Application, MemSentry, Technique};
use memsentry_repro::workloads::{Workload, WorkloadSpec, SPEC2006};

/// Runs the machine to completion and captures everything observable.
fn finish(m: &mut Machine) -> (u64, ExecStats, f64) {
    let code = m.run().expect_exit();
    (code, *m.stats(), m.cycles())
}

/// Steps `n` instructions (the program must not halt first).
fn step_n(m: &mut Machine, n: u64) {
    for _ in 0..n {
        assert!(!m.is_halted(), "snapshot point inside the program");
        m.step().expect("clean prefix");
    }
}

/// An MPK-protected machine running the golden shadow-stack listing.
fn mpk_machine() -> (Machine, MemSentry) {
    mpk_machine_with(MachineConfig::default())
}

/// Same golden machine under an explicit [`MachineConfig`] (the memo
/// purity property pits inline-cache-enabled against disabled runs).
fn mpk_machine_with(config: MachineConfig) -> (Machine, MemSentry) {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/shadow_demo.ms"
    ))
    .expect("golden listing");
    let mut program = parse_program(&text).expect("golden listing parses");
    let fw = MemSentry::new(Technique::Mpk, 4096);
    fw.instrument(&mut program, Application::ShadowStack)
        .expect("instruments");
    let mut m = Machine::with_config(program, config);
    fw.prepare_machine(&mut m).expect("prepares");
    (m, fw)
}

#[test]
fn golden_listing_replays_bit_identically() {
    let (mut m, _fw) = mpk_machine();
    step_n(&mut m, 3);
    let snap = m.snapshot();
    let reference = finish(&mut m);
    for _ in 0..3 {
        m.restore(&snap);
        assert_eq!(m.stats().instructions, snap.instructions());
        assert_eq!(m.cycles(), snap.cycles());
        assert_eq!(finish(&mut m), reference, "replay diverged");
    }
}

#[test]
fn calibrated_workload_replays_bit_identically() {
    let w = Workload::build(WorkloadSpec {
        profile: SPEC2006[0],
        superblocks: 1,
    });
    let mut m = Machine::new(w.program.clone());
    w.prepare(&mut m);
    step_n(&mut m, 500);
    let snap = m.snapshot();
    let reference = finish(&mut m);
    m.restore(&snap);
    assert_eq!(finish(&mut m), reference, "workload replay diverged");
}

#[test]
fn injected_events_and_their_damage_do_not_leak_through_restore() {
    let (mut m, fw) = mpk_machine();
    step_n(&mut m, 2);
    let snap = m.snapshot();
    let reference = finish(&mut m);

    // Corrupt the run: an asynchronous attacker write into the safe
    // region right after the snapshot point.
    m.restore(&snap);
    m.set_event_schedule(EventSchedule::at(
        snap.instructions(),
        EventAction::Write {
            addr: fw.layout().base,
            value: 0xdead_beef,
        },
    ));
    let _ = m.run();

    // The restore rewinds the memory image and clears the schedule.
    m.restore(&snap);
    assert_eq!(finish(&mut m), reference, "corruption leaked through");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Interleaved restores across ≥2 snapshots: the incremental
    /// `restored_from` path in `Machine::restore` must reproduce each
    /// snapshot bit-exactly however the restore order mixes them —
    /// exactly what `Recording::seek` does when replay boundaries hop
    /// between checkpoints. Every restore is checked against a fresh
    /// clone stepped straight to the same boundary.
    #[test]
    fn interleaved_restores_match_fresh_clone_restores(
        seed_a in 1u64..10_000,
        seed_b in 1u64..10_000,
        order in proptest::collection::vec(any::<bool>(), 2..8),
        dirty in 0u64..5,
    ) {
        let (mut m, _fw) = mpk_machine();
        let total = finish(&mut m).1.instructions;
        let lo = 1 + seed_a.min(seed_b) % (total - 1);
        let hi = 1 + seed_a.max(seed_b) % (total - 1);
        let (lo, hi) = (lo.min(hi), lo.max(hi));

        // Reference state at each boundary, from fresh clones.
        let fresh = |boundary: u64| {
            let (mut c, _fw) = mpk_machine();
            step_n(&mut c, boundary);
            (c.state_digest(), *c.stats(), c.cycles())
        };
        let expect_lo = fresh(lo);
        let expect_hi = fresh(hi);

        // One live machine, two snapshots along its own run.
        let (mut m, _fw) = mpk_machine();
        step_n(&mut m, lo);
        let snap_lo = m.snapshot();
        step_n(&mut m, hi - lo);
        let snap_hi = m.snapshot();

        for &pick_hi in &order {
            let (snap, expect) = if pick_hi {
                (&snap_hi, &expect_hi)
            } else {
                (&snap_lo, &expect_lo)
            };
            m.restore(snap);
            prop_assert_eq!(m.state_digest(), expect.0, "digest diverged");
            prop_assert_eq!(*m.stats(), expect.1);
            prop_assert_eq!(m.cycles(), expect.2);
            // Dirty the machine before the next restore so each
            // iteration restores across genuinely different state.
            for _ in 0..dirty {
                if m.is_halted() {
                    break;
                }
                m.step().expect("clean run");
            }
        }

        // And a full run from either snapshot still completes exactly
        // like an undisturbed machine.
        let reference = {
            let (mut c, _fw) = mpk_machine();
            finish(&mut c)
        };
        m.restore(&snap_lo);
        prop_assert_eq!(finish(&mut m), reference);
        m.restore(&snap_hi);
        prop_assert_eq!(finish(&mut m), reference);
    }

    /// The inline translation caches and the same-line cache memo are
    /// pure: a warm-IC machine digests identically to a disabled-IC
    /// machine at the same boundary (exclusion from `state_digest`), a
    /// snapshot taken with warm memos restores bit-exactly (exclusion
    /// from `MachineSnapshot`), and `restore` orphans every slot — even
    /// after the abandoned timeline kept executing, re-warmed slots
    /// under newer generations, and mutated PKRU or page protections so
    /// a stale entry would vouch for the wrong verdict.
    #[test]
    fn inline_cache_and_line_memo_are_pure_and_orphaned_by_restore(
        boundary in 1u64..200,
        extra in 1u64..60,
        toggle_pkru in any::<bool>(),
    ) {
        let reference = {
            let (mut m, _fw) = mpk_machine();
            finish(&mut m)
        };
        let total = reference.1.instructions;
        let at = 1 + boundary % (total - 1);

        // Warm machine: compiled engine with inline caches live.
        let (mut warm, fw) = mpk_machine_with(MachineConfig {
            threaded: true,
            inline_cache: true,
            ..MachineConfig::default()
        });
        prop_assert!(warm.run_until(at).is_ok());
        // Cold oracle: the escape hatch (`MSENTRY_NO_INLINE_CACHE=1`).
        let (mut cold, _fw) = mpk_machine_with(MachineConfig {
            threaded: true,
            inline_cache: false,
            ..MachineConfig::default()
        });
        prop_assert!(cold.run_until(at).is_ok());
        prop_assert_eq!(warm.state_digest(), cold.state_digest());

        let snap = warm.snapshot();

        // Abandoned timeline: keep retiring so slots re-warm, then
        // mutate the space — newer generations and a different PKRU now
        // stamp the memos — and warm them once more.
        for _ in 0..extra {
            if warm.is_halted() {
                break;
            }
            let n = warm.stats().instructions;
            let _ = warm.run_until(n + 1);
        }
        if toggle_pkru {
            let pkru = warm.space.pkru;
            warm.space.pkru = Pkru(pkru.0 ^ (0b11 << 30));
        } else {
            warm.space
                .mprotect(VirtAddr(fw.layout().base), PAGE_SIZE, Prot::ReadWrite);
        }
        let _ = warm.run();

        // Restore must orphan everything: the rewound machine digests
        // like the never-disturbed cold machine at every remaining
        // boundary and finishes exactly like the reference run.
        warm.restore(&snap);
        loop {
            prop_assert_eq!(warm.state_digest(), cold.state_digest());
            if warm.is_halted() {
                break;
            }
            let n = warm.stats().instructions;
            let ra = warm.run_until(n + 1);
            let rb = cold.run_until(n + 1);
            prop_assert_eq!(ra.clone(), rb);
            if ra.is_err() {
                break;
            }
        }
        prop_assert_eq!(warm.exit_code(), cold.exit_code());
        prop_assert_eq!(*warm.stats(), reference.1);
        prop_assert_eq!(warm.cycles(), reference.2);
    }
}

#[test]
fn random_snapshot_boundaries_all_replay_identically() {
    let w = Workload::build(WorkloadSpec {
        profile: SPEC2006[1],
        superblocks: 1,
    });
    let mut m = Machine::new(w.program.clone());
    w.prepare(&mut m);
    let reference = finish(&mut m);
    let total = reference.1.instructions;

    // Deterministic xorshift, so a failing boundary reproduces.
    let mut state: u64 = 0x5eed_0001;
    for _ in 0..12 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let boundary = state % total;
        let mut m = Machine::new(w.program.clone());
        w.prepare(&mut m);
        step_n(&mut m, boundary);
        let snap = m.snapshot();
        let finished = finish(&mut m);
        assert_eq!(finished, reference, "stepped run diverged at {boundary}");
        m.restore(&snap);
        assert_eq!(
            finish(&mut m),
            reference,
            "restored run diverged at {boundary}"
        );
    }
}
