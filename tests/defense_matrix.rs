//! The full composition matrix: every defense that stores a safe region
//! x every domain-based technique, benign runs. This is the paper's core
//! usability claim — "users can now easily swap out different isolation
//! techniques" — checked mechanically.

use memsentry_repro::cpu::Machine;
use memsentry_repro::defenses::{AslrGuard, CfiDefense, CpiTable, TasrDefense};
use memsentry_repro::ir::{verify, CodeAddr, FuncId, FunctionBuilder, Inst, Program, Reg};
use memsentry_repro::memsentry::{Application, MemSentry, Technique};
use memsentry_repro::mmu::{PageFlags, VirtAddr, PAGE_SIZE};
use memsentry_repro::passes::Pass;

const TECHNIQUES: [Technique; 5] = [
    Technique::Mpk,
    Technique::Vmfunc,
    Technique::Sgx,
    Technique::MprotectBaseline,
    Technique::PageTableSwitch,
];

/// Indirect call through a code pointer produced by `emit` and stored in
/// the safe region by `setup`; `target` computes 21.
fn call_target_program(emit: impl FnOnce(&mut FunctionBuilder)) -> Program {
    let mut p = Program::new();
    let mut main = FunctionBuilder::new("main");
    emit(&mut main);
    main.push(Inst::CallIndirect { target: Reg::Rcx });
    main.push(Inst::Halt);
    p.add_function(main.finish());
    let mut target = FunctionBuilder::new("target");
    target.push(Inst::MovImm {
        dst: Reg::Rax,
        imm: 21,
    });
    target.push(Inst::Ret);
    p.add_function(target.finish());
    p
}

#[test]
fn cpi_composes_with_every_domain_technique() {
    for technique in TECHNIQUES {
        let fw = MemSentry::new(technique, 256);
        let table = CpiTable::new(fw.layout());
        let mut p = call_target_program(|b| table.emit_load(b, Reg::Rcx, 0));
        fw.instrument(&mut p, Application::ProgramData).unwrap();
        verify(&p).unwrap();
        let mut m = Machine::new(p);
        fw.prepare_machine(&mut m).unwrap();
        fw.write_region(
            &mut m,
            0,
            &CodeAddr::entry(FuncId(1)).encode().to_le_bytes(),
        );
        assert_eq!(m.run().expect_exit(), 21, "CPI x {technique}");
    }
}

#[test]
fn aslr_guard_composes_with_every_domain_technique() {
    for technique in TECHNIQUES {
        let fw = MemSentry::new(technique, 256);
        let guard = AslrGuard::new(fw.layout(), 11);
        let ptr = CodeAddr::entry(FuncId(1)).encode();
        let encoded = guard.encode(3, ptr);
        let mut p = call_target_program(|b| {
            // Load the encoded pointer from ordinary data, then decode.
            b.push(Inst::MovImm {
                dst: Reg::Rbx,
                imm: 0x10_0000,
            });
            b.push(Inst::Load {
                dst: Reg::Rcx,
                addr: Reg::Rbx,
                offset: 0,
            });
            guard.emit_decode(b, Reg::Rcx, 3);
        });
        fw.instrument(&mut p, Application::ProgramData).unwrap();
        let mut m = Machine::new(p);
        fw.prepare_machine(&mut m).unwrap();
        m.space
            .map_region(VirtAddr(0x10_0000), PAGE_SIZE, PageFlags::rw());
        m.space.poke(VirtAddr(0x10_0000), &encoded.to_le_bytes());
        // Install the AG-RandMap through the framework (technique-aware).
        let mut keys = vec![0u8; 256];
        for slot in 0..32usize {
            let k = guard.encode(slot, 0); // encode(slot, 0) == key
            keys[slot * 8..slot * 8 + 8].copy_from_slice(&k.to_le_bytes());
        }
        fw.write_region(&mut m, 0, &keys);
        assert_eq!(m.run().expect_exit(), 21, "ASLR-Guard x {technique}");
    }
}

#[test]
fn cfi_composes_with_every_domain_technique() {
    for technique in TECHNIQUES {
        let fw = MemSentry::new(technique, 256);
        let cfi = CfiDefense::new(fw.layout(), vec![FuncId(1)]);
        let mut p = call_target_program(|b| {
            b.push(Inst::MovImm {
                dst: Reg::Rcx,
                imm: CodeAddr::entry(FuncId(1)).encode(),
            });
        });
        cfi.run(&mut p).unwrap();
        fw.instrument(&mut p, Application::ProgramData).unwrap();
        verify(&p).unwrap();
        let mut m = Machine::new(p);
        fw.prepare_machine(&mut m).unwrap();
        fw.write_region(&mut m, 8, &1u64.to_le_bytes());
        assert_eq!(m.run().expect_exit(), 21, "CFI x {technique}");
    }
}

#[test]
fn tasr_composes_with_mpk_and_sgx() {
    // TASR's kernel rerandomizer pokes the epoch slot directly, which is
    // compatible with techniques whose at-rest state is plain memory and
    // reachable from the kernel's own mapping (MPK, SGX; PTS would need
    // the rerandomizer to use the secure view's mapping).
    for technique in [Technique::Mpk, Technique::Sgx] {
        let fw = MemSentry::new(technique, 64);
        let t = TasrDefense::new(fw.layout(), vec![0x10_0000], 5);
        let mut p = call_target_program(|b| {
            b.push(Inst::Syscall { nr: 2 }); // rerandomize once
            b.push(Inst::MovImm {
                dst: Reg::Rbx,
                imm: 0x10_0000,
            });
            b.push(Inst::Load {
                dst: Reg::Rcx,
                addr: Reg::Rbx,
                offset: 0,
            });
            t.emit_decode(b, Reg::Rcx);
        });
        fw.instrument(&mut p, Application::ProgramData).unwrap();
        let mut m = Machine::new(p);
        fw.prepare_machine(&mut m).unwrap();
        m.space
            .map_region(VirtAddr(0x10_0000), PAGE_SIZE, PageFlags::rw());
        t.setup(&mut m, &[CodeAddr::entry(FuncId(1)).encode()]);
        assert_eq!(m.run().expect_exit(), 21, "TASR x {technique}");
    }
}
