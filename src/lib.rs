#![warn(missing_docs)]

//! Umbrella crate for the MemSentry reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests in this package can use a single dependency. The
//! actual framework lives in [`memsentry`]; see the README for a tour.

pub use memsentry;
pub use memsentry_aes as aes;
pub use memsentry_attacks as attacks;
pub use memsentry_check as check;
pub use memsentry_cpu as cpu;
pub use memsentry_defenses as defenses;
pub use memsentry_hv as hv;
pub use memsentry_ir as ir;
pub use memsentry_mmu as mmu;
pub use memsentry_passes as passes;
pub use memsentry_sgx as sgx;
pub use memsentry_workloads as workloads;
