//! `msentry` — the command-line front end to the MemSentry framework.
//!
//! Works on textual IR listings (the format `memsentry-ir`'s printer and
//! parser share). Subcommands:
//!
//! ```text
//! msentry run <file>                         execute a listing
//! msentry instrument <file> -t <technique> -a <application>
//!                                            print the instrumented listing
//! msentry protect <file> -t <technique> -a <application>
//!                                            instrument AND run
//! msentry check <file> [--address r|w|rw]    parse + verify + isolation
//!                                            soundness analysis (domain
//!                                            windows, ERIM gadget scan,
//!                                            register discipline; --address
//!                                            additionally requires SFI/MPX
//!                                            checks on loads/stores)
//! msentry techniques                         list techniques (Table 3)
//! ```
//!
//! Example listing (`demo.ms`):
//!
//! ```text
//! fn0 <main>:
//!     mov    rbx, 0x400000000000
//!     mov    r12, 0x2a
//!   ! mov    [rbx+0x0], r12
//!   ! mov    rax, [rbx+0x0]
//!     hlt
//! ```

use std::process::ExitCode;

use memsentry_repro::check::{check_program, AddressPolicy, CheckPolicy};
use memsentry_repro::cpu::{Machine, RunOutcome};
use memsentry_repro::ir::{parse_program, print::format_program, verify, Program};
use memsentry_repro::memsentry::{Application, MemSentry, Technique};

fn technique_from(name: &str) -> Option<Technique> {
    Some(match name.to_ascii_lowercase().as_str() {
        "sfi" => Technique::Sfi,
        "mpx" => Technique::Mpx,
        "mpk" => Technique::Mpk,
        "vmfunc" => Technique::Vmfunc,
        "crypt" => Technique::Crypt,
        "sgx" => Technique::Sgx,
        "mprotect" => Technique::MprotectBaseline,
        "pts" => Technique::PageTableSwitch,
        "info-hiding" | "hiding" => Technique::InfoHiding,
        _ => return None,
    })
}

fn application_from(name: &str) -> Option<Application> {
    Some(match name.to_ascii_lowercase().as_str() {
        "code-randomization" => Application::CodeRandomization,
        "cfi" => Application::Cfi,
        "shadow-stack" => Application::ShadowStack,
        "cpi" => Application::Cpi,
        "layout-randomization" => Application::LayoutRandomization,
        "heap" | "heap-protection" => Application::HeapProtection,
        "data" | "program-data" => Application::ProgramData,
        _ => return None,
    })
}

fn load(path: &str) -> Result<Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let program = parse_program(&text).map_err(|e| format!("{path}: {e}"))?;
    verify(&program).map_err(|e| format!("{path}: verification failed: {e}"))?;
    Ok(program)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn run_machine(framework: Option<&MemSentry>, program: Program) -> ExitCode {
    let mut machine = Machine::new(program);
    if let Some(fw) = framework {
        if let Err(e) = fw.prepare_machine(&mut machine) {
            eprintln!("prepare failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    match machine.run() {
        RunOutcome::Exited(code) => {
            println!(
                "exited with {code:#x} after {} instructions ({:.0} cycles)",
                machine.stats().instructions,
                machine.cycles()
            );
            ExitCode::SUCCESS
        }
        RunOutcome::Trapped(t) => {
            println!("trapped: {t}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: msentry <run|check|instrument|protect|techniques> [<file>] \
         [-t <technique>] [-a <application>] [--region <bytes>] [--address <r|w|rw>]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    match cmd {
        "techniques" => {
            println!("{}", memsentry_bench::tables::table3());
            println!("plus extensions: PTS (page-table switching, PCID)");
            ExitCode::SUCCESS
        }
        "run" | "check" | "instrument" | "protect" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let mut program = match load(path) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            if cmd == "check" {
                let policy = if args.iter().any(|a| a == "--address") {
                    match flag(&args, "--address").as_deref() {
                        Some("r") => CheckPolicy::address_checked(AddressPolicy::READS),
                        Some("w") => CheckPolicy::address_checked(AddressPolicy::WRITES),
                        Some("rw") => CheckPolicy::address_checked(AddressPolicy::READ_WRITE),
                        Some(other) => {
                            eprintln!("unknown --address mode '{other}' (try: r, w, rw)");
                            return ExitCode::FAILURE;
                        }
                        None => {
                            eprintln!("--address requires a mode (try: r, w, rw)");
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    CheckPolicy::universal()
                };
                let report = check_program(&program, &policy);
                if report.is_clean() {
                    println!(
                        "{path}: ok ({} functions, {} instructions)",
                        program.functions.len(),
                        program.inst_count()
                    );
                    return ExitCode::SUCCESS;
                }
                for finding in &report.findings {
                    println!("{path}: {finding}");
                }
                eprintln!("{path}: {} finding(s)", report.findings.len());
                return ExitCode::FAILURE;
            }
            if cmd == "run" {
                return run_machine(None, program);
            }
            // instrument / protect
            let technique = match flag(&args, "-t").as_deref().map(technique_from) {
                Some(Some(t)) => t,
                _ => {
                    eprintln!("missing or unknown -t <technique> (try: mpk, mpx, sfi, vmfunc, crypt, sgx, mprotect, pts)");
                    return ExitCode::FAILURE;
                }
            };
            let application = match flag(&args, "-a").as_deref().map(application_from) {
                Some(Some(a)) => a,
                None => Application::ProgramData,
                Some(None) => {
                    eprintln!("unknown -a <application> (try: shadow-stack, cfi, cpi, heap, data)");
                    return ExitCode::FAILURE;
                }
            };
            let region = flag(&args, "--region")
                .and_then(|s| s.parse().ok())
                .unwrap_or(4096);
            let framework = MemSentry::new(technique, region);
            println!(
                "# technique {} / application {:?} / region {:#x}+{:#x}",
                technique,
                application,
                framework.layout().base,
                framework.layout().len
            );
            if let Err(e) = framework.instrument(&mut program, application) {
                eprintln!("instrumentation failed: {e}");
                return ExitCode::FAILURE;
            }
            if cmd == "instrument" {
                print!("{}", format_program(&program));
                return ExitCode::SUCCESS;
            }
            run_machine(Some(&framework), program)
        }
        _ => usage(),
    }
}
