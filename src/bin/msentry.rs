//! `msentry` — the command-line front end to the MemSentry framework.
//!
//! Works on textual IR listings (the format `memsentry-ir`'s printer and
//! parser share). Subcommands:
//!
//! ```text
//! msentry run <file>                         execute a listing
//!   [--fuel N]                               trap with a distinct "out of
//!                                            fuel" diagnostic (exit 2)
//!                                            after N retired instructions
//!   [--inject SPEC]...                       inject asynchronous events:
//!                                            signal@N, preempt@N:TO,QUANTUM,
//!                                            write@N:ADDR,VALUE,
//!                                            alloc-fail@N:COUNT (N = retired-
//!                                            instruction boundary)
//!   [--handler FN] [--no-scrub]              signal handler function index;
//!                                            scrubbed delivery unless
//!                                            --no-scrub
//! msentry instrument <file> -t <technique> -a <application>
//!                                            print the instrumented listing
//! msentry protect <file> -t <technique> -a <application>
//!                                            instrument AND run (accepts the
//!                                            same --fuel/--inject options;
//!                                            scrubbed delivery closes to the
//!                                            technique's domain closure)
//! msentry check <file> [--address r|w|rw]    parse + verify + isolation
//!                                            soundness analysis (domain
//!                                            windows — interprocedural via
//!                                            per-function summaries — ERIM
//!                                            gadget scan, register
//!                                            discipline; --address
//!                                            additionally requires SFI/MPX
//!                                            checks on loads/stores)
//!   [--json]                                 structured findings + static
//!                                            window exposure bounds (schema
//!                                            in DESIGN.md)
//!   [--exposure]                             append per-window worst-case
//!                                            static exposure bounds
//!   [--summaries]                            append per-function summaries
//!                                            (open-safe, exit events,
//!                                            write sets)
//! msentry techniques                         list techniques (Table 3)
//! ```
//!
//! Example listing (`demo.ms`):
//!
//! ```text
//! fn0 <main>:
//!     mov    rbx, 0x400000000000
//!     mov    r12, 0x2a
//!   ! mov    [rbx+0x0], r12
//!   ! mov    rax, [rbx+0x0]
//!     hlt
//! ```

use std::process::ExitCode;

use memsentry_repro::check::{
    check_json, check_program, exposure_windows, AddressPolicy, CheckPolicy, Summaries,
};
use memsentry_repro::cpu::cost::CostModel;
use memsentry_repro::cpu::{
    Event, EventAction, EventSchedule, Machine, RunOutcome, SignalPolicy, Trap,
};
use memsentry_repro::ir::{parse_program, print::format_program, verify, FuncId, Program};
use memsentry_repro::memsentry::{Application, MemSentry, Technique};

fn technique_from(name: &str) -> Option<Technique> {
    Some(match name.to_ascii_lowercase().as_str() {
        "sfi" => Technique::Sfi,
        "mpx" => Technique::Mpx,
        "mpk" => Technique::Mpk,
        "vmfunc" => Technique::Vmfunc,
        "crypt" => Technique::Crypt,
        "sgx" => Technique::Sgx,
        "mprotect" => Technique::MprotectBaseline,
        "pts" => Technique::PageTableSwitch,
        "info-hiding" | "hiding" => Technique::InfoHiding,
        _ => return None,
    })
}

fn application_from(name: &str) -> Option<Application> {
    Some(match name.to_ascii_lowercase().as_str() {
        "code-randomization" => Application::CodeRandomization,
        "cfi" => Application::Cfi,
        "shadow-stack" => Application::ShadowStack,
        "cpi" => Application::Cpi,
        "layout-randomization" => Application::LayoutRandomization,
        "heap" | "heap-protection" => Application::HeapProtection,
        "data" | "program-data" => Application::ProgramData,
        _ => return None,
    })
}

fn load(path: &str) -> Result<Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let program = parse_program(&text).map_err(|e| format!("{path}: {e}"))?;
    verify(&program).map_err(|e| format!("{path}: verification failed: {e}"))?;
    Ok(program)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_values(args: &[String], name: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .cloned()
        .collect()
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let s = s.trim();
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    }
    .map_err(|_| format!("bad number '{s}'"))
}

/// Parses one `--inject` spec (`KIND@INDEX[:ARGS]`) into a scheduled
/// event at retired-instruction boundary `INDEX`.
fn parse_inject(spec: &str) -> Result<Event, String> {
    let bad = || {
        format!(
            "bad inject spec '{spec}' (try: signal@N, preempt@N:TO,QUANTUM, \
             write@N:ADDR,VALUE, alloc-fail@N:COUNT)"
        )
    };
    let (kind, rest) = spec.split_once('@').ok_or_else(bad)?;
    let (at, args) = match rest.split_once(':') {
        Some((at, args)) => (parse_u64(at)?, Some(args)),
        None => (parse_u64(rest)?, None),
    };
    let action = match (kind, args) {
        ("signal", None) => EventAction::Signal,
        ("preempt", Some(args)) => {
            let (to, quantum) = args.split_once(',').ok_or_else(bad)?;
            EventAction::Preempt {
                to: parse_u64(to)? as usize,
                quantum: parse_u64(quantum)?,
                scrub: true,
            }
        }
        ("write", Some(args)) => {
            let (addr, value) = args.split_once(',').ok_or_else(bad)?;
            EventAction::Write {
                addr: parse_u64(addr)?,
                value: parse_u64(value)?,
            }
        }
        ("alloc-fail", Some(count)) => EventAction::FailAllocs {
            count: parse_u64(count)?,
        },
        _ => return Err(bad()),
    };
    Ok(Event { at, action })
}

/// Run-time options shared by `run` and `protect`.
#[derive(Default)]
struct RunOptions {
    fuel: Option<u64>,
    events: Vec<Event>,
    handler: Option<FuncId>,
    scrub: bool,
}

impl RunOptions {
    fn from_args(args: &[String]) -> Result<Self, String> {
        let fuel = match flag(args, "--fuel") {
            Some(n) => Some(parse_u64(&n)?),
            None => None,
        };
        let events = flag_values(args, "--inject")
            .iter()
            .map(|s| parse_inject(s))
            .collect::<Result<Vec<_>, _>>()?;
        let handler = match flag(args, "--handler") {
            Some(n) => Some(FuncId(parse_u64(&n)? as u32)),
            None => None,
        };
        Ok(Self {
            fuel,
            events,
            handler,
            scrub: !args.iter().any(|a| a == "--no-scrub"),
        })
    }
}

fn run_machine(framework: Option<&MemSentry>, program: Program, opts: &RunOptions) -> ExitCode {
    let mut machine = Machine::new(program);
    if let Some(fw) = framework {
        if let Err(e) = fw.prepare_machine(&mut machine) {
            eprintln!("prepare failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(fuel) = opts.fuel {
        machine.set_fuel(fuel);
    }
    if !opts.events.is_empty() {
        machine.set_event_schedule(EventSchedule::new(opts.events.clone()));
        if let Some(fw) = framework {
            machine.set_domain_closure(fw.signal_closure());
        }
    }
    if let Some(handler) = opts.handler {
        machine.set_signal_policy(SignalPolicy {
            handler,
            scrub: opts.scrub,
        });
    }
    let outcome = machine.run();
    let stats = machine.stats();
    if stats.signals > 0 || stats.preemptions > 0 {
        println!(
            "delivered {} signal(s), {} preemption(s)",
            stats.signals, stats.preemptions
        );
    }
    match outcome {
        RunOutcome::Exited(code) => {
            println!(
                "exited with {code:#x} after {} instructions ({:.0} cycles)",
                stats.instructions,
                machine.cycles()
            );
            ExitCode::SUCCESS
        }
        RunOutcome::Trapped(Trap::OutOfFuel) => {
            eprintln!(
                "out of fuel: {} instructions retired without halting (raise --fuel)",
                stats.instructions
            );
            ExitCode::from(2)
        }
        RunOutcome::Trapped(t) => {
            println!("trapped: {t}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: msentry <run|check|instrument|protect|techniques> [<file>] \
         [-t <technique>] [-a <application>] [--region <bytes>] [--address <r|w|rw>] \
         [--json] [--exposure] [--summaries] \
         [--fuel <n>] [--inject <spec>]... [--handler <fn>] [--no-scrub]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    match cmd {
        "techniques" => {
            println!("{}", memsentry_bench::tables::table3());
            println!("plus extensions: PTS (page-table switching, PCID)");
            ExitCode::SUCCESS
        }
        "run" | "check" | "instrument" | "protect" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let mut program = match load(path) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            if cmd == "check" {
                let policy = if args.iter().any(|a| a == "--address") {
                    match flag(&args, "--address").as_deref() {
                        Some("r") => CheckPolicy::address_checked(AddressPolicy::READS),
                        Some("w") => CheckPolicy::address_checked(AddressPolicy::WRITES),
                        Some("rw") => CheckPolicy::address_checked(AddressPolicy::READ_WRITE),
                        Some(other) => {
                            eprintln!("unknown --address mode '{other}' (try: r, w, rw)");
                            return ExitCode::FAILURE;
                        }
                        None => {
                            eprintln!("--address requires a mode (try: r, w, rw)");
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    CheckPolicy::universal()
                };
                let report = check_program(&program, &policy);
                let status = if report.is_clean() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                };
                if args.iter().any(|a| a == "--json") {
                    let windows = exposure_windows(&program, &CostModel::default());
                    println!("{}", check_json(path, &program, &report, &windows));
                    return status;
                }
                if report.is_clean() {
                    println!(
                        "{path}: ok ({} functions, {} instructions)",
                        program.functions.len(),
                        program.inst_count()
                    );
                } else {
                    for finding in &report.findings {
                        println!("{path}: {finding}");
                    }
                    eprintln!("{path}: {} finding(s)", report.findings.len());
                }
                if args.iter().any(|a| a == "--exposure") {
                    for w in exposure_windows(&program, &CostModel::default()) {
                        println!(
                            "{path}: window fn{} <{}> @{} [{}]: {}",
                            w.func.0,
                            w.func_name,
                            w.open_at,
                            w.tech.name(),
                            w.bound
                        );
                    }
                }
                if args.iter().any(|a| a == "--summaries") {
                    for (id, s) in Summaries::compute(&program).iter() {
                        let writes: Vec<String> = if s.writes_all {
                            vec!["*".into()]
                        } else {
                            s.writes.iter().map(|r| r.to_string()).collect()
                        };
                        println!(
                            "{path}: summary fn{} <{}>: open-safe={} touches-domain={} \
                             exit-events={} recursive={} writes={{{}}}",
                            id.0,
                            program.func(id).name,
                            s.open_safe,
                            s.touches_domain,
                            s.has_exit_event,
                            s.recursive,
                            writes.join(",")
                        );
                    }
                }
                return status;
            }
            let opts = match RunOptions::from_args(&args) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            if cmd == "run" {
                return run_machine(None, program, &opts);
            }
            // instrument / protect
            let technique = match flag(&args, "-t").as_deref().map(technique_from) {
                Some(Some(t)) => t,
                _ => {
                    eprintln!("missing or unknown -t <technique> (try: mpk, mpx, sfi, vmfunc, crypt, sgx, mprotect, pts)");
                    return ExitCode::FAILURE;
                }
            };
            let application = match flag(&args, "-a").as_deref().map(application_from) {
                Some(Some(a)) => a,
                None => Application::ProgramData,
                Some(None) => {
                    eprintln!("unknown -a <application> (try: shadow-stack, cfi, cpi, heap, data)");
                    return ExitCode::FAILURE;
                }
            };
            let region = flag(&args, "--region")
                .and_then(|s| s.parse().ok())
                .unwrap_or(4096);
            let framework = MemSentry::new(technique, region);
            println!(
                "# technique {} / application {:?} / region {:#x}+{:#x}",
                technique,
                application,
                framework.layout().base,
                framework.layout().len
            );
            if let Err(e) = framework.instrument(&mut program, application) {
                eprintln!("instrumentation failed: {e}");
                return ExitCode::FAILURE;
            }
            if cmd == "instrument" {
                print!("{}", format_program(&program));
                return ExitCode::SUCCESS;
            }
            run_machine(Some(&framework), program, &opts)
        }
        _ => usage(),
    }
}
