//! `msentry` — the command-line front end to the MemSentry framework.
//!
//! Works on textual IR listings (the format `memsentry-ir`'s printer and
//! parser share). Subcommands:
//!
//! ```text
//! msentry run <file>                         execute a listing
//!   [--fuel N]                               trap with a distinct "out of
//!                                            fuel" diagnostic (exit 2)
//!                                            after N retired instructions
//!   [--inject SPEC]...                       inject asynchronous events:
//!                                            signal@N, preempt@N:TO,QUANTUM,
//!                                            write@N:ADDR,VALUE,
//!                                            alloc-fail@N:COUNT (N = retired-
//!                                            instruction boundary); or event
//!                                            STREAMS — KIND@every:PERIOD[,ARGS]
//!                                            (recurring, first firing at
//!                                            PERIOD), KIND@burst:AT,COUNT,GAP
//!                                            [,ARGS] (COUNT firings GAP apart
//!                                            starting at AT), and
//!                                            KIND@after:TRIGGER+DELAY[,ARGS]
//!                                            (compound: fires DELAY insts
//!                                            after the first actual delivery
//!                                            of a TRIGGER-kind event) — with
//!                                            the same per-kind ARGS as the
//!                                            one-shot forms
//!   [--storm-seed S]                         deterministically jitter every
//!                                            recurring (every:) stream's
//!                                            phase by a seeded offset in
//!                                            [0, PERIOD) — same S, same storm
//!   [--handler FN] [--no-scrub]              signal handler function index;
//!                                            scrubbed delivery unless
//!                                            --no-scrub
//!   [--op-stats]                             step the per-instruction
//!                                            interpreter recording the
//!                                            retired op-pair histogram
//!                                            (the measurement behind the
//!                                            threaded engine's fusion set)
//!                                            and print the top sequential
//!                                            pairs after the run
//! msentry instrument <file> -t <technique> -a <application>
//!                                            print the instrumented listing
//! msentry protect <file> -t <technique> -a <application>
//!                                            instrument AND run (accepts the
//!                                            same --fuel/--inject options;
//!                                            scrubbed delivery closes to the
//!                                            technique's domain closure)
//! msentry replay <file> --at N               record the run once (checkpoint
//!                                            stream + event schedule), rewind
//!                                            bit-exactly to boundary N, and
//!                                            print architectural state,
//!                                            domain-window status and stats
//!   [-t <technique> [-a <application>]]      instrument + prepare like
//!                                            `protect` before recording
//!   [--fuel N] [--inject SPEC]...            same options as `run`; injected
//!   [--handler FN] [--no-scrub]              events are part of the recording
//!                                            and replay deterministically
//!   [--spacing K]                            checkpoint every K boundaries
//!                                            (default 64)
//!   [--bisect]                               binary-search the first boundary
//!                                            where the --inject event (its @N
//!                                            — or a recurring stream's phase —
//!                                            re-aimed per probe) leaves the
//!                                            mailbox holding the secret;
//!                                            after: specs are rejected (their
//!                                            firing is keyed to a delivery,
//!                                            not a boundary)
//!   [--mailbox ADDR] [--secret VALUE]        exposure oracle for --bisect
//!                                            (defaults: the fault campaign's
//!                                            mailbox/secret)
//!   [--crash-sweep]                          inject a crash at every boundary
//!                                            (drop live state, recover from
//!                                            the nearest checkpoint) and
//!                                            assert the recovered state
//!                                            digests equal to a crash-free
//!                                            reference run
//! msentry check <file> [--address r|w|rw]    parse + verify + isolation
//!                                            soundness analysis (domain
//!                                            windows — interprocedural via
//!                                            per-function summaries — ERIM
//!                                            gadget scan, register
//!                                            discipline; --address
//!                                            additionally requires SFI/MPX
//!                                            checks on loads/stores)
//!   [--json]                                 structured findings + static
//!                                            window exposure bounds (schema
//!                                            in DESIGN.md)
//!   [--exposure]                             append per-window worst-case
//!                                            static exposure bounds
//!   [--summaries]                            append per-function summaries
//!                                            (open-safe, exit events,
//!                                            write sets)
//! msentry techniques                         list techniques (Table 3)
//! ```
//!
//! Example listing (`demo.ms`):
//!
//! ```text
//! fn0 <main>:
//!     mov    rbx, 0x400000000000
//!     mov    r12, 0x2a
//!   ! mov    [rbx+0x0], r12
//!   ! mov    rax, [rbx+0x0]
//!     hlt
//! ```

use std::process::ExitCode;

use memsentry_repro::attacks::campaign;
use memsentry_repro::check::{
    check_json, check_program, exposure_windows, AddressPolicy, CheckPolicy, Summaries,
};
use memsentry_repro::cpu::cost::CostModel;
use memsentry_repro::cpu::replay::{bisect_first, crash_sweep, Recording, ReplayError};
use memsentry_repro::cpu::{
    seeded_offsets, tally_run, Event, EventAction, EventSchedule, Machine, RunOutcome,
    SignalPolicy, StreamSource, Trap, TriggerKind,
};
use memsentry_repro::ir::{parse_program, print::format_program, verify, FuncId, Program, Reg};
use memsentry_repro::memsentry::{Application, MemSentry, Technique};
use memsentry_repro::mmu::VirtAddr;

fn technique_from(name: &str) -> Option<Technique> {
    Some(match name.to_ascii_lowercase().as_str() {
        "sfi" => Technique::Sfi,
        "mpx" => Technique::Mpx,
        "mpk" => Technique::Mpk,
        "vmfunc" => Technique::Vmfunc,
        "crypt" => Technique::Crypt,
        "sgx" => Technique::Sgx,
        "mprotect" => Technique::MprotectBaseline,
        "pts" => Technique::PageTableSwitch,
        "info-hiding" | "hiding" => Technique::InfoHiding,
        _ => return None,
    })
}

fn application_from(name: &str) -> Option<Application> {
    Some(match name.to_ascii_lowercase().as_str() {
        "code-randomization" => Application::CodeRandomization,
        "cfi" => Application::Cfi,
        "shadow-stack" => Application::ShadowStack,
        "cpi" => Application::Cpi,
        "layout-randomization" => Application::LayoutRandomization,
        "heap" | "heap-protection" => Application::HeapProtection,
        "data" | "program-data" => Application::ProgramData,
        _ => return None,
    })
}

fn load(path: &str) -> Result<Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let program = parse_program(&text).map_err(|e| format!("{path}: {e}"))?;
    verify(&program).map_err(|e| format!("{path}: verification failed: {e}"))?;
    Ok(program)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_values(args: &[String], name: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .cloned()
        .collect()
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let s = s.trim();
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    }
    .map_err(|_| format!("bad number '{s}'"))
}

/// One parsed `--inject` spec: a one-shot event or a stream source.
#[derive(Clone, Copy)]
enum InjectSpec {
    /// `KIND@N[:ARGS]` — fires once at a retired-instruction boundary.
    Once(Event),
    /// `KIND@every:…`, `KIND@burst:…`, `KIND@after:…`.
    Stream(StreamSource),
}

/// Parses one `--inject` spec: a one-shot event at a retired-instruction
/// boundary (`KIND@INDEX[:ARGS]`) or a stream (`KIND@every:PERIOD[,ARGS]`,
/// `KIND@burst:AT,COUNT,GAP[,ARGS]`, `KIND@after:TRIGGER+DELAY[,ARGS]`).
fn parse_inject(spec: &str) -> Result<InjectSpec, String> {
    let bad = || {
        format!(
            "bad inject spec '{spec}' (try: signal@N, preempt@N:TO,QUANTUM, \
             write@N:ADDR,VALUE, alloc-fail@N:COUNT; streams: KIND@every:PERIOD[,ARGS], \
             KIND@burst:AT,COUNT,GAP[,ARGS], KIND@after:TRIGGER+DELAY[,ARGS])"
        )
    };
    // Funnel every numeric field through this so a malformed number —
    // trailing garbage (`signal@5x`), an overflowing index, an empty
    // field — surfaces as the full "bad inject spec" diagnostic with the
    // spec grammar, not a bare "bad number".
    let num = |s: &str| parse_u64(s).map_err(|_| bad());
    let (kind, rest) = spec.split_once('@').ok_or_else(bad)?;
    // Every spec shape funnels its per-kind trailing fields through this,
    // so one-shot and stream forms share one argument grammar.
    let action = |fields: &[&str]| -> Result<EventAction, String> {
        Ok(match (kind, fields) {
            ("signal", []) => EventAction::Signal,
            ("preempt", [to, quantum]) => EventAction::Preempt {
                to: num(to)? as usize,
                quantum: num(quantum)?,
                scrub: true,
            },
            ("write", [addr, value]) => EventAction::Write {
                addr: num(addr)?,
                value: num(value)?,
            },
            ("alloc-fail", [count]) => EventAction::FailAllocs { count: num(count)? },
            _ => return Err(bad()),
        })
    };
    if let Some(body) = rest.strip_prefix("every:") {
        let fields: Vec<&str> = body.split(',').collect();
        let [period, args @ ..] = fields.as_slice() else {
            return Err(bad());
        };
        return Ok(InjectSpec::Stream(StreamSource::Every {
            period: num(period)?.max(1),
            // First firing one full period in; --storm-seed jitters this.
            phase: num(period)?.max(1),
            limit: None,
            action: action(args)?,
        }));
    }
    if let Some(body) = rest.strip_prefix("burst:") {
        let fields: Vec<&str> = body.split(',').collect();
        let [at, count, gap, args @ ..] = fields.as_slice() else {
            return Err(bad());
        };
        return Ok(InjectSpec::Stream(StreamSource::Every {
            period: num(gap)?.max(1),
            phase: num(at)?,
            limit: Some(num(count)?),
            action: action(args)?,
        }));
    }
    if let Some(body) = rest.strip_prefix("after:") {
        let (head, args) = match body.split_once(',') {
            Some((head, args)) => (head, Some(args)),
            None => (body, None),
        };
        let (trigger, delay) = head.split_once('+').ok_or_else(bad)?;
        let trigger = match trigger {
            "signal" => TriggerKind::Signal,
            "preempt" => TriggerKind::Preempt,
            "write" => TriggerKind::Write,
            "alloc-fail" => TriggerKind::AllocFail,
            _ => return Err(bad()),
        };
        let fields: Vec<&str> = args.map(|a| a.split(',').collect()).unwrap_or_default();
        return Ok(InjectSpec::Stream(StreamSource::After {
            trigger,
            delay: num(delay)?,
            action: action(&fields)?,
        }));
    }
    let (at, args) = match rest.split_once(':') {
        Some((at, args)) => (num(at)?, Some(args)),
        None => (num(rest)?, None),
    };
    let fields: Vec<&str> = args.map(|a| a.split(',').collect()).unwrap_or_default();
    Ok(InjectSpec::Once(Event {
        at,
        action: action(&fields)?,
    }))
}

/// Renders a spec the way the user would write it, for the unfired-event
/// warnings.
fn describe_stream(s: &StreamSource) -> String {
    match *s {
        StreamSource::Every {
            period,
            phase,
            limit: None,
            action,
        } => format!("{}@every:{period} (phase {phase})", action.kind().name()),
        StreamSource::Every {
            period,
            phase,
            limit: Some(n),
            action,
        } => format!("{}@burst:{phase},{n},{period}", action.kind().name()),
        StreamSource::After {
            trigger,
            delay,
            action,
        } => format!("{}@after:{}+{delay}", action.kind().name(), trigger.name()),
    }
}

/// Run-time options shared by `run` and `protect`.
#[derive(Default)]
struct RunOptions {
    fuel: Option<u64>,
    specs: Vec<InjectSpec>,
    handler: Option<FuncId>,
    scrub: bool,
    op_stats: bool,
}

impl RunOptions {
    fn from_args(args: &[String]) -> Result<Self, String> {
        let fuel = match flag(args, "--fuel") {
            Some(n) => Some(parse_u64(&n)?),
            None => None,
        };
        let mut specs = flag_values(args, "--inject")
            .iter()
            .map(|s| parse_inject(s))
            .collect::<Result<Vec<_>, _>>()?;
        if let Some(seed) = flag(args, "--storm-seed") {
            let seed = parse_u64(&seed)?;
            // Jitter each recurring stream's phase by a seeded offset in
            // [0, period) — bursts and compound triggers keep their exact
            // user-given anchor.
            let mut nth = 0u64;
            for spec in &mut specs {
                if let InjectSpec::Stream(StreamSource::Every {
                    period,
                    phase,
                    limit: None,
                    ..
                }) = spec
                {
                    *phase += seeded_offsets(seed.wrapping_add(nth), 1, 0, *period)[0];
                    nth += 1;
                }
            }
        }
        let handler = match flag(args, "--handler") {
            Some(n) => Some(FuncId(parse_u64(&n)? as u32)),
            None => None,
        };
        Ok(Self {
            fuel,
            specs,
            handler,
            scrub: !args.iter().any(|a| a == "--no-scrub"),
            op_stats: args.iter().any(|a| a == "--op-stats"),
        })
    }

    /// The one-shot events among the parsed specs, in spec order.
    fn events(&self) -> Vec<Event> {
        self.specs
            .iter()
            .filter_map(|s| match s {
                InjectSpec::Once(e) => Some(*e),
                InjectSpec::Stream(_) => None,
            })
            .collect()
    }

    /// The stream sources among the parsed specs, in spec order.
    fn streams(&self) -> Vec<StreamSource> {
        self.specs
            .iter()
            .filter_map(|s| match s {
                InjectSpec::Once(_) => None,
                InjectSpec::Stream(src) => Some(*src),
            })
            .collect()
    }
}

/// Rejects a `--handler` that names a function the listing does not
/// define — up front, with the available functions, instead of trapping
/// mid-run on the first delivery.
fn validate_handler(program: &Program, handler: Option<FuncId>) -> Result<(), String> {
    let Some(h) = handler else { return Ok(()) };
    if (h.0 as usize) < program.functions.len() {
        return Ok(());
    }
    let have: Vec<String> = program
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| format!("fn{i} <{}>", f.name))
        .collect();
    Err(format!(
        "--handler fn{}: no such function in the listing (have: {})",
        h.0,
        have.join(", ")
    ))
}

fn run_machine(framework: Option<&MemSentry>, program: Program, opts: &RunOptions) -> ExitCode {
    let mut machine = Machine::new(program);
    if let Some(fw) = framework {
        if let Err(e) = fw.prepare_machine(&mut machine) {
            eprintln!("prepare failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(fuel) = opts.fuel {
        machine.set_fuel(fuel);
    }
    if !opts.specs.is_empty() {
        machine.set_event_schedule(EventSchedule::with_streams(opts.events(), opts.streams()));
        if let Some(fw) = framework {
            machine.set_domain_closure(fw.signal_closure());
        }
    }
    if let Some(handler) = opts.handler {
        machine.set_signal_policy(SignalPolicy {
            handler,
            scrub: opts.scrub,
        });
    }
    let outcome = if opts.op_stats {
        // Profiling steps the per-instruction interpreter (`tally_run`),
        // which retires the same stream as `run` — so the histogram is
        // exact and the exit/trap reporting below stays identical.
        let (tally, trap) = tally_run(&mut machine);
        print_op_stats(&tally);
        match trap {
            Some(t) => RunOutcome::Trapped(t),
            None => RunOutcome::Exited(machine.exit_code().unwrap_or(0)),
        }
    } else {
        machine.run()
    };
    let stats = machine.stats();
    if stats.signals > 0 || stats.preemptions > 0 {
        println!(
            "delivered {} signal(s), {} preemption(s)",
            stats.signals, stats.preemptions
        );
    }
    // The injection post-mortem: anything scheduled that never happened
    // is almost always a mis-aimed spec, so say so loudly.
    if let Some(schedule) = machine.event_schedule() {
        for e in schedule.unfired() {
            eprintln!(
                "warning: injected event {}@{} never fired (run ended at boundary {})",
                e.action.kind().name(),
                e.at,
                stats.instructions
            );
        }
        for (source, fired) in schedule.streams() {
            if fired == 0 {
                eprintln!(
                    "warning: injected stream {} never fired (run ended at boundary {})",
                    describe_stream(&source),
                    stats.instructions
                );
            }
        }
    }
    if stats.dropped_events > 0 {
        eprintln!(
            "warning: {} event(s) fired but could not be delivered (dropped)",
            stats.dropped_events
        );
    }
    match outcome {
        RunOutcome::Exited(code) => {
            println!(
                "exited with {code:#x} after {} instructions ({:.0} cycles)",
                stats.instructions,
                machine.cycles()
            );
            ExitCode::SUCCESS
        }
        RunOutcome::Trapped(Trap::OutOfFuel) => {
            eprintln!(
                "out of fuel: {} instructions retired without halting (raise --fuel)",
                stats.instructions
            );
            ExitCode::from(2)
        }
        RunOutcome::Trapped(t) => {
            println!("trapped: {t}");
            ExitCode::FAILURE
        }
    }
}

/// Prints the retired op-pair histogram recorded by `--op-stats`: totals,
/// the sequential/control-transfer split, and the top sequential pairs
/// with their share of retired instructions (the same shares the bench
/// profiler prints, so the fusion-set table in EXPERIMENTS.md can be
/// cross-checked against any hand-written listing).
fn print_op_stats(tally: &memsentry_repro::cpu::OpPairTally) {
    let total = tally.total();
    let seq = tally.total_sequential();
    let xfer = tally.total_transfer();
    println!(
        "op-stats: {total} instruction(s) retired; {seq} sequential pair(s), \
         {xfer} across control transfers"
    );
    for p in tally.top_sequential(10) {
        println!(
            "    {:<22} {:>9}  {:>5.1}%",
            format!("{}+{}", p.first.name(), p.second.name()),
            p.count,
            100.0 * p.count as f64 / total.max(1) as f64
        );
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: msentry <run|replay|check|instrument|protect|techniques> [<file>] \
         [-t <technique>] [-a <application>] [--region <bytes>] [--address <r|w|rw>] \
         [--json] [--exposure] [--summaries] \
         [--fuel <n>] [--inject <spec>]... [--storm-seed <s>] [--handler <fn>] [--no-scrub] \
         [--op-stats] \
         [--at <boundary>] [--spacing <k>] [--bisect] [--mailbox <addr>] \
         [--secret <value>] [--crash-sweep]"
    );
    ExitCode::FAILURE
}

/// The `replay` subcommand: record the run once (checkpoint stream plus
/// event schedule), then rewind to a boundary, bisect exposure, or sweep
/// crash recovery over every boundary.
fn replay_cmd(args: &[String], mut program: Program, opts: &RunOptions) -> ExitCode {
    // With -t the listing is instrumented and prepared exactly like
    // `protect`, so the recording has real domain windows to inspect.
    let framework = match flag(args, "-t").as_deref().map(technique_from) {
        Some(Some(technique)) => {
            let application = match flag(args, "-a").as_deref().map(application_from) {
                Some(Some(a)) => a,
                None => Application::ProgramData,
                Some(None) => {
                    eprintln!("unknown -a <application> (try: shadow-stack, cfi, cpi, heap, data)");
                    return ExitCode::FAILURE;
                }
            };
            let region = flag(args, "--region")
                .and_then(|s| s.parse().ok())
                .unwrap_or(4096);
            let fw = MemSentry::new(technique, region);
            if let Err(e) = fw.instrument(&mut program, application) {
                eprintln!("instrumentation failed: {e}");
                return ExitCode::FAILURE;
            }
            Some(fw)
        }
        Some(None) => {
            eprintln!(
                "unknown -t <technique> (try: mpk, mpx, sfi, vmfunc, crypt, sgx, mprotect, pts)"
            );
            return ExitCode::FAILURE;
        }
        None => None,
    };
    let mut m = Machine::new(program);
    if let Some(fw) = &framework {
        if let Err(e) = fw.prepare_machine(&mut m) {
            eprintln!("prepare failed: {e}");
            return ExitCode::FAILURE;
        }
        m.set_domain_closure(fw.signal_closure());
    }
    if let Some(fuel) = opts.fuel {
        m.set_fuel(fuel);
    }
    if let Some(handler) = opts.handler {
        m.set_signal_policy(SignalPolicy {
            handler,
            scrub: opts.scrub,
        });
    }
    let spacing = match flag(args, "--spacing") {
        Some(s) => match parse_u64(&s) {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("bad --spacing '{s}' (want a positive boundary count)");
                return ExitCode::FAILURE;
            }
        },
        None => 64,
    };
    let bisect = args.iter().any(|a| a == "--bisect");
    // --bisect records the *clean* run and injects per probe; the other
    // modes bake the --inject schedule (one-shots and streams alike) into
    // the recording itself — checkpoints carry the schedule cursors, so
    // seeks land mid-storm bit-exactly.
    if !bisect && !opts.specs.is_empty() {
        m.set_event_schedule(EventSchedule::with_streams(opts.events(), opts.streams()));
    }
    let rec = Recording::capture(&mut m, spacing, &[]);
    eprintln!(
        "recorded {} boundaries, {} checkpoint(s), spacing {spacing}",
        rec.boundaries(),
        rec.checkpoint_count()
    );
    match rec.outcome() {
        RunOutcome::Exited(code) => eprintln!("recorded run exits with {code:#x}"),
        RunOutcome::Trapped(Trap::OutOfFuel) => eprintln!(
            "recorded run is out of fuel after {} instructions (raise --fuel)",
            rec.boundaries()
        ),
        RunOutcome::Trapped(t) => eprintln!("recorded run traps: {t}"),
    }
    if args.iter().any(|a| a == "--crash-sweep") {
        return run_crash_sweep(&rec, &mut m);
    }
    if bisect {
        return run_bisect(args, &rec, &mut m, opts);
    }
    match flag(args, "--at") {
        Some(at) => {
            let at = match parse_u64(&at) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = rec.seek(&mut m, at) {
                eprintln!("replay: {e}");
                return ExitCode::FAILURE;
            }
            print_state(&m, &rec, at);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("replay needs one of --at <boundary>, --bisect, --crash-sweep");
            ExitCode::FAILURE
        }
    }
}

/// Prints architectural state, domain-window status and stats of the
/// machine rewound to boundary `at`.
fn print_state(m: &Machine, rec: &Recording, at: u64) {
    let pc = m.pc();
    println!(
        "boundary {at} of {}: {} instructions retired, {:.0} cycles",
        rec.boundaries(),
        m.stats().instructions,
        m.cycles()
    );
    println!(
        "pc fn{} <{}> +{}{}",
        pc.func.0,
        m.program().func(pc.func).name,
        pc.index,
        if m.is_halted() { " (halted)" } else { "" }
    );
    for row in Reg::ALL.chunks(4) {
        let cells: Vec<String> = row
            .iter()
            .map(|&r| format!("{r}={:#018x}", m.reg(r)))
            .collect();
        println!("  {}", cells.join("  "));
    }
    println!(
        "domain: pkru={:#010x} in_vm={} in_enclave={}",
        m.space.pkru.0,
        m.in_vm(),
        m.in_enclave()
    );
    println!(
        "events: pending={} signal_depth={} preempt_active={}",
        m.pending_events(),
        m.signal_depth(),
        m.preempt_active()
    );
    let s = m.stats();
    println!(
        "stats: loads={} stores={} calls={} syscalls={} wrpkrus={} vmfuncs={} \
         aes_chunks={} sgx_transitions={} signals={} preemptions={}",
        s.loads,
        s.stores,
        s.calls,
        s.syscalls,
        s.wrpkrus,
        s.vmfuncs,
        s.aes_chunks,
        s.sgx_transitions,
        s.signals,
        s.preemptions
    );
    println!("state digest {:#018x}", m.state_digest());
}

/// Drives the crash-consistency sweep and renders the report.
fn run_crash_sweep(rec: &Recording, m: &mut Machine) -> ExitCode {
    match crash_sweep(rec, m) {
        Ok(report) if report.is_consistent() => {
            println!(
                "crash sweep: {} boundaries, {} checkpoint(s), every recovery bit-exact",
                report.boundaries, report.checkpoints
            );
            ExitCode::SUCCESS
        }
        Ok(report) => {
            for v in &report.violations {
                println!(
                    "boundary {}: recovered {:#018x}, expected {:#018x}",
                    v.boundary, v.recovered, v.expected
                );
            }
            eprintln!(
                "crash sweep: {} recovery violation(s)",
                report.violations.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("crash sweep failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Binary-searches the first boundary where the injected event leaves the
/// mailbox holding the secret — the fault campaign's exposure oracle.
fn run_bisect(args: &[String], rec: &Recording, m: &mut Machine, opts: &RunOptions) -> ExitCode {
    let Some(template) = opts.specs.first().copied() else {
        eprintln!(
            "--bisect needs an --inject spec; its @N (or a stream's phase) is \
             re-aimed at every probed boundary"
        );
        return ExitCode::FAILURE;
    };
    if let InjectSpec::Stream(StreamSource::After { .. }) = template {
        eprintln!(
            "--bisect cannot re-aim an after: spec (it fires relative to a \
             delivery, not a boundary); bisect the trigger stream instead"
        );
        return ExitCode::FAILURE;
    }
    let mailbox = match flag(args, "--mailbox").as_deref().map(parse_u64) {
        Some(Ok(a)) => a,
        Some(Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        None => campaign::MAILBOX,
    };
    let secret = match flag(args, "--secret").as_deref().map(parse_u64) {
        Some(Ok(v)) => v,
        Some(Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        None => campaign::SECRET,
    };
    let n = rec.boundaries();
    let result = bisect_first(n, |b| {
        rec.seek(m, b)?;
        let schedule = match template {
            InjectSpec::Once(mut event) => {
                event.at = rec.start() + b;
                EventSchedule::new(vec![event])
            }
            // A recurring/burst stream is re-phased so its first firing
            // lands exactly at the probed boundary.
            InjectSpec::Stream(StreamSource::Every {
                period,
                limit,
                action,
                ..
            }) => EventSchedule::with_streams(
                Vec::new(),
                vec![StreamSource::Every {
                    period,
                    phase: rec.start() + b,
                    limit,
                    action,
                }],
            ),
            InjectSpec::Stream(StreamSource::After { .. }) => unreachable!("rejected above"),
        };
        m.set_event_schedule(schedule);
        // A trapped probe counts as "not exposed" unless the mailbox
        // already holds the secret at the trap point.
        let _ = m.run();
        let mut buf = [0u8; 8];
        m.space.peek(VirtAddr(mailbox), &mut buf);
        Ok::<bool, ReplayError>(u64::from_le_bytes(buf) == secret)
    });
    match result {
        Ok((Some(first), probes)) => {
            println!("first exposed boundary: {first} (of {n}; {probes} probes vs {n} linear)");
            ExitCode::SUCCESS
        }
        Ok((None, probes)) => {
            println!("no exposed boundary in 0..{n} ({probes} probes)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bisect failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    match cmd {
        "techniques" => {
            println!("{}", memsentry_bench::tables::table3());
            println!("plus extensions: PTS (page-table switching, PCID)");
            ExitCode::SUCCESS
        }
        "run" | "replay" | "check" | "instrument" | "protect" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let mut program = match load(path) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            if cmd == "check" {
                let policy = if args.iter().any(|a| a == "--address") {
                    match flag(&args, "--address").as_deref() {
                        Some("r") => CheckPolicy::address_checked(AddressPolicy::READS),
                        Some("w") => CheckPolicy::address_checked(AddressPolicy::WRITES),
                        Some("rw") => CheckPolicy::address_checked(AddressPolicy::READ_WRITE),
                        Some(other) => {
                            eprintln!("unknown --address mode '{other}' (try: r, w, rw)");
                            return ExitCode::FAILURE;
                        }
                        None => {
                            eprintln!("--address requires a mode (try: r, w, rw)");
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    CheckPolicy::universal()
                };
                let report = check_program(&program, &policy);
                let status = if report.is_clean() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                };
                if args.iter().any(|a| a == "--json") {
                    let windows = exposure_windows(&program, &CostModel::default());
                    println!("{}", check_json(path, &program, &report, &windows));
                    return status;
                }
                if report.is_clean() {
                    println!(
                        "{path}: ok ({} functions, {} instructions)",
                        program.functions.len(),
                        program.inst_count()
                    );
                } else {
                    for finding in &report.findings {
                        println!("{path}: {finding}");
                    }
                    eprintln!("{path}: {} finding(s)", report.findings.len());
                }
                if args.iter().any(|a| a == "--exposure") {
                    for w in exposure_windows(&program, &CostModel::default()) {
                        println!(
                            "{path}: window fn{} <{}> @{} [{}]: {}",
                            w.func.0,
                            w.func_name,
                            w.open_at,
                            w.tech.name(),
                            w.bound
                        );
                    }
                }
                if args.iter().any(|a| a == "--summaries") {
                    for (id, s) in Summaries::compute(&program).iter() {
                        let writes: Vec<String> = if s.writes_all {
                            vec!["*".into()]
                        } else {
                            s.writes.iter().map(|r| r.to_string()).collect()
                        };
                        println!(
                            "{path}: summary fn{} <{}>: open-safe={} touches-domain={} \
                             exit-events={} recursive={} writes={{{}}}",
                            id.0,
                            program.func(id).name,
                            s.open_safe,
                            s.touches_domain,
                            s.has_exit_event,
                            s.recursive,
                            writes.join(",")
                        );
                    }
                }
                return status;
            }
            let opts = match RunOptions::from_args(&args) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = validate_handler(&program, opts.handler) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            if cmd == "run" {
                return run_machine(None, program, &opts);
            }
            if cmd == "replay" {
                return replay_cmd(&args, program, &opts);
            }
            // instrument / protect
            let technique = match flag(&args, "-t").as_deref().map(technique_from) {
                Some(Some(t)) => t,
                _ => {
                    eprintln!("missing or unknown -t <technique> (try: mpk, mpx, sfi, vmfunc, crypt, sgx, mprotect, pts)");
                    return ExitCode::FAILURE;
                }
            };
            let application = match flag(&args, "-a").as_deref().map(application_from) {
                Some(Some(a)) => a,
                None => Application::ProgramData,
                Some(None) => {
                    eprintln!("unknown -a <application> (try: shadow-stack, cfi, cpi, heap, data)");
                    return ExitCode::FAILURE;
                }
            };
            let region = flag(&args, "--region")
                .and_then(|s| s.parse().ok())
                .unwrap_or(4096);
            let framework = MemSentry::new(technique, region);
            println!(
                "# technique {} / application {:?} / region {:#x}+{:#x}",
                technique,
                application,
                framework.layout().base,
                framework.layout().len
            );
            if let Err(e) = framework.instrument(&mut program, application) {
                eprintln!("instrumentation failed: {e}");
                return ExitCode::FAILURE;
            }
            if cmd == "instrument" {
                print!("{}", format_program(&program));
                return ExitCode::SUCCESS;
            }
            run_machine(Some(&framework), program, &opts)
        }
        _ => usage(),
    }
}
