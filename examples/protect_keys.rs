//! Protecting arbitrary program data — private keys — with the dynamic
//! points-to pipeline of paper §5.5.
//!
//! For defenses like shadow stacks the instrumentation points are known
//! syntactically, but for in-program secrets MemSentry must discover
//! *which instructions touch the secret*. The paper's answer: a PIN pass
//! records per-instruction accesses on a representative run, and the
//! instrumentation pass consumes that trace. This example runs the whole
//! pipeline:
//!
//! 1. build a program whose crypto routine reads a key from the safe
//!    region (no annotations anywhere);
//! 2. trace a representative run with [`DynamicPointsTo`];
//! 3. mark the observed accessor instructions privileged;
//! 4. instrument with MPK and re-run — the crypto still works, and the
//!    "exfiltrate" routine (never seen touching the key in the trace,
//!    because it is the attacker's gadget) faults deterministically.
//!
//! Run with: `cargo run --example protect_keys`

use memsentry_repro::cpu::machine::AccessTracer;
use memsentry_repro::cpu::{Machine, RunOutcome};
use memsentry_repro::ir::{CodeAddr, FuncId, FunctionBuilder, Inst, Program, Reg};
use memsentry_repro::memsentry::{Application, MemSentry, Technique};
use memsentry_repro::mmu::{PageFlags, VirtAddr, PAGE_SIZE};
use memsentry_repro::passes::DynamicPointsTo;

const DATA: u64 = 0x10_0000; // ordinary data page
const KEY_VALUE: u64 = 0x0123_4567_89ab_cdef;

/// fn0 main: encrypt(data) with the key; fn1 exfil: raw read of the key.
fn build(key_addr: u64) -> Program {
    let mut p = Program::new();
    let mut main = FunctionBuilder::new("main");
    // rcx <- key (the legitimate crypto access).
    main.push(Inst::MovImm {
        dst: Reg::Rbx,
        imm: key_addr,
    });
    main.push(Inst::Load {
        dst: Reg::Rcx,
        addr: Reg::Rbx,
        offset: 0,
    });
    // "encrypt": out = plaintext ^ key.
    main.push(Inst::MovImm {
        dst: Reg::Rbx,
        imm: DATA,
    });
    main.push(Inst::Load {
        dst: Reg::Rax,
        addr: Reg::Rbx,
        offset: 0,
    });
    main.push(Inst::AluReg {
        op: memsentry_repro::ir::AluOp::Xor,
        dst: Reg::Rax,
        src: Reg::Rcx,
    });
    main.push(Inst::Store {
        src: Reg::Rax,
        addr: Reg::Rbx,
        offset: 8,
    });
    main.push(Inst::Halt);
    p.add_function(main.finish());

    let mut exfil = FunctionBuilder::new("exfil");
    exfil.push(Inst::MovImm {
        dst: Reg::Rbx,
        imm: key_addr,
    });
    exfil.push(Inst::Load {
        dst: Reg::Rax,
        addr: Reg::Rbx,
        offset: 0,
    });
    exfil.push(Inst::Halt);
    p.add_function(exfil.finish());
    p
}

fn fresh_machine(fw: &MemSentry, p: Program) -> Machine {
    let mut m = Machine::new(p);
    fw.prepare_machine(&mut m).expect("prepare");
    m.space
        .map_region(VirtAddr(DATA), PAGE_SIZE, PageFlags::rw());
    m.space.poke(VirtAddr(DATA), &0x1111u64.to_le_bytes());
    fw.write_region(&mut m, 0, &KEY_VALUE.to_le_bytes());
    m
}

fn main() {
    let fw = MemSentry::new(Technique::Mpk, 64);
    let key_addr = fw.layout().base;
    let program = build(key_addr);

    // --- 1+2: trace a representative run (key unprotected for tracing).
    let trace_fw = MemSentry::with_layout(Technique::InfoHiding, fw.layout());
    let mut tracer_machine = fresh_machine(&trace_fw, program.clone());
    #[derive(Debug)]
    struct Shared(std::rc::Rc<std::cell::RefCell<DynamicPointsTo>>);
    impl AccessTracer for Shared {
        fn record(&mut self, at: CodeAddr, is_store: bool, va: u64) {
            self.0.borrow_mut().record(at, is_store, va);
        }
    }
    let cell = std::rc::Rc::new(std::cell::RefCell::new(DynamicPointsTo::new(fw.layout())));
    tracer_machine.set_tracer(Box::new(Shared(cell.clone())));
    tracer_machine.run().expect_exit();
    tracer_machine.take_tracer();
    let pta = std::rc::Rc::try_unwrap(cell).unwrap().into_inner();
    println!(
        "dynamic points-to: {} of {} accesses touch the key region: {:?}",
        pta.observed().len(),
        pta.total_accesses(),
        pta.observed()
    );

    // --- 3: mark the observed accessors privileged.
    let mut hardened = program.clone();
    pta.mark_privileged(&mut hardened);

    // --- 4: instrument + run.
    fw.instrument(&mut hardened, Application::ProgramData)
        .expect("instrument");
    let mut m = fresh_machine(&fw, hardened.clone());
    let out = m.run();
    println!(
        "hardened crypto run: exit = {:#x} (plaintext ^ key)",
        out.expect_exit()
    );
    assert_eq!(out.expect_exit(), 0x1111 ^ KEY_VALUE);

    // The exfiltration gadget was never observed in the trace, so it was
    // not marked privileged: under MPK it faults.
    let mut m = fresh_machine(&fw, hardened);
    match m.call_function(FuncId(1), [0; 3]) {
        RunOutcome::Trapped(t) => println!("exfil gadget: {t}"),
        other => panic!("exfiltration should fault, got {other:?}"),
    }

    println!(
        "\nThe paper's caveat applies: dynamic analysis under-approximates —\n\
         an accessor not exercised by the traced input would fault at run\n\
         time exactly like the gadget did (fail-closed)."
    );
}
