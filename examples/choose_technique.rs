//! The paper's §6.3 guidance, executable: which technique should your
//! defense use? Sweeps domain-switch frequency on the simulator and
//! reports the crossover between address-based (MPX) and domain-based
//! (MPK/VMFUNC/crypt) isolation — "the optimal choice primarily depends on
//! how often domain switches occur in practice".
//!
//! Run with: `cargo run --release --example choose_technique`

use memsentry_repro::memsentry::Technique;
use memsentry_repro::passes::{AddressKind, InstrumentMode, SwitchPoints};
use memsentry_repro::workloads::BenchProfile;

use memsentry_bench::measure::Session;
use memsentry_bench::runner::ExperimentConfig;

fn main() {
    let superblocks = 12;
    // One session for the whole sweep: each benchmark's baseline is
    // simulated once and shared by all four technique columns.
    let session = Session::new();
    println!("normalized overhead by call/ret frequency (profile sweep)\n");
    println!(
        "{:<24} {:>8} {:>8} {:>8} {:>8}",
        "benchmark (pairs/kinst)", "MPX-w", "MPK", "VMFUNC", "crypt"
    );

    // Sort benchmarks by switch frequency to make the crossover visible.
    let mut profiles: Vec<&BenchProfile> = memsentry_repro::workloads::SPEC2006.iter().collect();
    profiles.sort_by(|a, b| a.callret_pk.total_cmp(&b.callret_pk));

    let mut crossover: Option<&str> = None;
    for p in profiles {
        let mpx = session
            .overhead(
                p,
                superblocks,
                ExperimentConfig::Address {
                    kind: AddressKind::Mpx,
                    mode: InstrumentMode::WRITES,
                },
            )
            .expect("measurement");
        let domain = |t| {
            session
                .overhead(
                    p,
                    superblocks,
                    ExperimentConfig::Domain {
                        technique: t,
                        points: SwitchPoints::CallRet,
                        region_len: 16,
                    },
                )
                .expect("measurement")
        };
        let mpk = domain(Technique::Mpk);
        let vmf = domain(Technique::Vmfunc);
        let crypt = domain(Technique::Crypt);
        if mpk > mpx && crossover.is_none() {
            crossover = Some(p.short_name());
        }
        println!(
            "{:<17} {:>6.2} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            p.short_name(),
            p.callret_pk,
            mpx,
            mpk,
            vmf,
            crypt
        );
    }

    println!();
    if let Some(name) = crossover {
        println!(
            "crossover: from ~{name} upward, address-based MPX beats domain-based MPK \
             for shadow-stack-frequency switching — the paper's conclusion that \
             \"when [switching] happens frequently, such as for every call and ret \
             instruction, addressing-based approaches are more favorable\"."
        );
    }
    println!(
        "for sparse switch points (system calls, allocator calls), prefer MPK \
         (or VMFUNC on pre-MPK hardware); avoid crypt for vector-heavy code."
    );
}
