//! Quickstart: protect a safe region with MemSentry in a dozen lines.
//!
//! Builds a small program whose privileged instructions store and reload a
//! secret in a safe region, instruments it with the MPK technique, and
//! shows (a) the program still works, (b) an unprivileged snooper faults
//! deterministically, and (c) what the instrumentation actually inserted.
//!
//! Run with: `cargo run --example quickstart`

use memsentry_repro::cpu::Machine;
use memsentry_repro::ir::print::format_program;
use memsentry_repro::ir::{FunctionBuilder, Inst, Program, Reg};
use memsentry_repro::memsentry::{Application, MemSentry, Technique};

fn main() {
    // 1. Pick a technique and allocate the safe region (saferegion_alloc).
    let framework = MemSentry::new(Technique::Mpk, 4096);
    let region = framework.layout();
    println!(
        "safe region: {:#x}..{:#x} (pkey {})\n",
        region.base,
        region.base + region.len,
        region.pkey
    );

    // 2. Build a program. Privileged instructions (saferegion_access) may
    //    touch the region; everything else may not.
    let mut program = Program::new();
    let mut b = FunctionBuilder::new("main");
    b.push(Inst::MovImm {
        dst: Reg::Rbx,
        imm: region.base,
    });
    b.push(Inst::MovImm {
        dst: Reg::R12,
        imm: 0x5ec2e7,
    });
    b.push_privileged(Inst::Store {
        src: Reg::R12,
        addr: Reg::Rbx,
        offset: 0,
    });
    b.push_privileged(Inst::Load {
        dst: Reg::R8,
        addr: Reg::Rbx,
        offset: 0,
    });
    b.push(Inst::Mov {
        dst: Reg::Rax,
        src: Reg::R8,
    });
    b.push(Inst::Halt);
    program.add_function(b.finish());

    // 3. Instrument (the MemSentry pass) and prepare the machine.
    framework
        .instrument(&mut program, Application::ProgramData)
        .expect("instrumentation");
    println!("instrumented program:\n{}", format_program(&program));

    let mut machine = Machine::new(program);
    framework.prepare_machine(&mut machine).expect("prepare");

    // 4. Run: the privileged path works...
    let out = machine.run();
    println!("privileged store+load: exit = {:#x}", out.expect_exit());

    // 5. ...and a snooper does not.
    let mut snoop = Program::new();
    let mut b = FunctionBuilder::new("snoop");
    b.push(Inst::MovImm {
        dst: Reg::Rbx,
        imm: region.base,
    });
    b.push(Inst::Load {
        dst: Reg::Rax,
        addr: Reg::Rbx,
        offset: 0,
    });
    b.push(Inst::Halt);
    snoop.add_function(b.finish());
    framework
        .instrument(&mut snoop, Application::ProgramData)
        .expect("instrumentation");
    let mut machine = Machine::new(snoop);
    framework.prepare_machine(&mut machine).expect("prepare");
    match machine.run() {
        memsentry_repro::cpu::RunOutcome::Trapped(t) => {
            println!("unprivileged snoop:    {t}")
        }
        other => panic!("snoop should have faulted, got {other:?}"),
    }
}
