//! Hardening real defenses with MemSentry (paper §4): a shadow stack and
//! a coarse CFI policy, each backed by a deterministic technique.
//!
//! Shows the composition the paper advocates: the *defense* pass runs
//! first and marks its runtime accesses privileged; the *MemSentry* pass
//! runs second and pins those accesses to the chosen hardware feature.
//!
//! Run with: `cargo run --example harden_defenses`

use memsentry_repro::cpu::{Machine, RunOutcome};
use memsentry_repro::defenses::{CfiDefense, ShadowStack};
use memsentry_repro::ir::{CodeAddr, FuncId, FunctionBuilder, Inst, Program, Reg};
use memsentry_repro::memsentry::{Application, MemSentry, Technique};
use memsentry_repro::passes::Pass;

/// main calls victim; victim smashes its own return address toward gadget.
fn ret_hijack_program() -> Program {
    let mut p = Program::new();
    let mut main = FunctionBuilder::new("main");
    main.push(Inst::Call(FuncId(1)));
    main.push(Inst::MovImm {
        dst: Reg::Rax,
        imm: 0,
    });
    main.push(Inst::Halt);
    let mut victim = FunctionBuilder::new("victim");
    victim.push(Inst::MovImm {
        dst: Reg::Rcx,
        imm: CodeAddr::entry(FuncId(2)).encode(),
    });
    victim.push(Inst::Store {
        src: Reg::Rcx,
        addr: Reg::Rsp,
        offset: 0,
    });
    victim.push(Inst::Ret);
    let mut gadget = FunctionBuilder::new("gadget");
    gadget.push(Inst::MovImm {
        dst: Reg::Rax,
        imm: 0x666,
    });
    gadget.push(Inst::Halt);
    p.add_function(main.finish());
    p.add_function(victim.finish());
    p.add_function(gadget.finish());
    p
}

/// main indirect-calls a corrupted function pointer (a gadget, not the
/// intended target).
fn cfi_bypass_program() -> Program {
    let mut p = Program::new();
    let mut main = FunctionBuilder::new("main");
    main.push(Inst::MovImm {
        dst: Reg::Rbx,
        imm: CodeAddr::entry(FuncId(2)).encode(), // should have been FuncId(1)
    });
    main.push(Inst::CallIndirect { target: Reg::Rbx });
    main.push(Inst::Halt);
    let mut good = FunctionBuilder::new("intended");
    good.push(Inst::MovImm {
        dst: Reg::Rax,
        imm: 1,
    });
    good.push(Inst::Ret);
    let mut gadget = FunctionBuilder::new("gadget");
    gadget.push(Inst::MovImm {
        dst: Reg::Rax,
        imm: 0x666,
    });
    gadget.push(Inst::Ret);
    p.add_function(main.finish());
    p.add_function(good.finish());
    p.add_function(gadget.finish());
    p
}

fn describe(out: RunOutcome) -> String {
    match out {
        RunOutcome::Exited(0x666) => "HIJACKED".into(),
        RunOutcome::Exited(code) => format!("exited cleanly ({code})"),
        RunOutcome::Trapped(t) => format!("stopped: {t}"),
    }
}

fn main() {
    println!("== return-address hijack vs shadow stack ==");
    // Undefended: the hijack works.
    let mut m = Machine::new(ret_hijack_program());
    println!("  undefended:             {}", describe(m.run()));

    // Shadow stack + MemSentry/VMFUNC.
    for technique in [Technique::Mpk, Technique::Vmfunc, Technique::Crypt] {
        let fw = MemSentry::new(technique, 4096);
        let shadow = ShadowStack::new(fw.layout());
        let mut p = ret_hijack_program();
        shadow.run(&mut p).unwrap(); // defense pass first (Figure 1)
        fw.instrument(&mut p, Application::ProgramData).unwrap();
        let mut m = Machine::new(p);
        fw.prepare_machine(&mut m).unwrap();
        fw.write_region(&mut m, 0, &(fw.layout().base + 8).to_le_bytes());
        println!(
            "  shadow stack + {:<7} {}",
            format!("{technique}:"),
            describe(m.run())
        );
    }

    println!("\n== function-pointer corruption vs coarse CFI ==");
    let mut m = Machine::new(cfi_bypass_program());
    println!("  undefended:             {}", describe(m.run()));
    let fw = MemSentry::new(Technique::Mpk, 4096);
    let cfi = CfiDefense::new(fw.layout(), vec![FuncId(1)]);
    let mut p = cfi_bypass_program();
    cfi.run(&mut p).unwrap();
    fw.instrument(&mut p, Application::ProgramData).unwrap();
    let mut m = Machine::new(p);
    fw.prepare_machine(&mut m).unwrap();
    // The target table is in the safe region; write it through the
    // framework so the technique's at-rest state holds.
    fw.write_region(&mut m, 8, &1u64.to_le_bytes()); // allow FuncId(1) only
    println!("  coarse CFI + MPK:       {}", describe(m.run()));
}
