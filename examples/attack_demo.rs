//! The paper's threat model, end to end (§2.3): an attacker with an
//! arbitrary read/write primitive attacks a shadow-stack-defended victim.
//!
//! Against **information hiding**, the allocation-oracle attack locates the
//! hidden safe region in ~35 probes (despite >30 bits of placement
//! entropy) and the hijack succeeds. Against every **deterministic**
//! technique the same attack dies at phase one — even though the attacker
//! is handed the region's address for free ("no need to hide").
//!
//! Run with: `cargo run --release --example attack_demo`

use memsentry_repro::attacks::{
    attack, jitrop_attack, AttackResult, DiversifiedVictim, JitRopResult,
};
use memsentry_repro::memsentry::{HiddenRegion, Technique};

fn main() {
    println!(
        "information-hiding placement entropy: {} bits\n",
        HiddenRegion::entropy_bits()
    );
    println!(
        "{:<14} {:<10} {:<10} outcome",
        "technique", "probes", "disclosed"
    );
    for technique in [
        Technique::InfoHiding,
        Technique::Mpk,
        Technique::Vmfunc,
        Technique::Crypt,
        Technique::Mpx,
        Technique::Sfi,
    ] {
        let out = attack(technique, 2026);
        let outcome = match &out.result {
            AttackResult::Hijacked => "HIJACKED — defense bypassed".to_string(),
            AttackResult::DeniedAtProbe(t) => format!("stopped at probe ({t})"),
            AttackResult::DeniedAtWrite(t) => format!("stopped at write ({t})"),
            AttackResult::DetectedAtUse(t) => format!("tampering caught ({t})"),
            AttackResult::NotFound => "region never located".to_string(),
        };
        println!(
            "{:<14} {:<10} {:<10} {}",
            technique.name(),
            out.probes,
            if out.secret_disclosed { "yes" } else { "no" },
            outcome
        );
    }
    println!(
        "\nExhaustive scanning instead of the oracle would need ~2^{} probes.",
        HiddenRegion::entropy_bits()
    );

    // Act two: code diversification vs JIT-ROP vs execute-only memory.
    println!("\n== code diversification (JIT-ROP scan over readable code) ==");
    let mut v = DiversifiedVictim::new(2026, false);
    match jitrop_attack(&mut v) {
        JitRopResult::Hijacked { probes } => println!(
            "  diversified only:    gadget fingerprinted in {probes} code probes — HIJACKED"
        ),
        other => println!("  diversified only:    {other:?}"),
    }
    let mut v = DiversifiedVictim::new(2026, true);
    match jitrop_attack(&mut v) {
        JitRopResult::DeniedAtProbe { trap, probes } => {
            println!("  + Readactor XoM:     scan dead at probe {probes} ({trap})")
        }
        other => println!("  + Readactor XoM:     {other:?}"),
    }
}
